// The float32 compute tier of candidate generation. Stage-3 training
// hands fine-tuning float64 embeddings; these scratches convert them
// once per iteration — through the fused center/normalise kernel — into
// half-width copies and run the bandwidth-bound work (blocked top-k
// projection, LSH hashing, exact re-rank) on float32 values with float64
// accumulators. Candidate lists stay float64 (scores widen on store, a
// monotonic map, so ordering is exactly the f32 comparison order), which
// keeps every downstream consumer — hubness, LISI, trusted pairs,
// integration, matching — byte-for-byte identical code in both tiers.
package align

import (
	"fmt"

	"github.com/htc-align/htc/internal/ann"
	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/par"
)

// topkScratch32 is topkScratch on the float32 tier: half-width
// centered/normalised embedding copies and per-worker float32 sim
// blocks. Halving the element width doubles both the rows per cache
// line and the effective capacity of each 4 MiB block budget.
type topkScratch32 struct {
	a, b   *dense.Matrix32
	blocks []*dense.Matrix32
	heaps  []candHeap
}

// topK mirrors topkScratch.topK over float32 embeddings. Scores are
// accumulated in float64 per cell and stored as float32 (see
// dense.MulBTInto32); the selection heap compares the widened stored
// values, so results are bit-identical for every worker count.
func (s *topkScratch32) topK(hs, ht *dense.Matrix, k, workers int) *Candidates {
	if k < 1 {
		panic(fmt.Sprintf("align: TopKCandidates k = %d < 1", k))
	}
	if k > ht.Rows {
		k = ht.Rows
	}
	s.a = dense.Ensure32(s.a, hs.Rows, hs.Cols)
	s.b = dense.Ensure32(s.b, ht.Rows, ht.Cols)
	dense.CenterNormalizeRowsInto32(s.a, hs)
	dense.CenterNormalizeRowsInto32(s.b, ht)

	ns, nt := hs.Rows, ht.Rows
	out := &Candidates{
		K:     k,
		Idx:   make([][]int32, ns),
		Score: make([][]float64, ns),
	}
	idxBack := make([]int32, ns*k)
	scoreBack := make([]float64, ns*k)
	for i := 0; i < ns; i++ {
		out.Idx[i] = idxBack[i*k : i*k+k : i*k+k]
		out.Score[i] = scoreBack[i*k : i*k+k : i*k+k]
	}
	if ns == 0 || k == 0 {
		return out
	}

	blockRows := topkBlockRows(nt)
	nBlocks := (ns + blockRows - 1) / blockRows
	w := par.Resolve(workers)
	if w > nBlocks {
		w = nBlocks
	}
	if len(s.blocks) < w {
		s.blocks = append(s.blocks, make([]*dense.Matrix32, w-len(s.blocks))...)
	}
	if len(s.heaps) < w {
		s.heaps = append(s.heaps, make([]candHeap, w-len(s.heaps))...)
	}
	a, b := s.a, s.b
	par.Sharded(w, nBlocks, func(worker, blk int) {
		start := blk * blockRows
		end := start + blockRows
		if end > ns {
			end = ns
		}
		rows := end - start
		s.blocks[worker] = dense.Ensure32(s.blocks[worker], blockRows, nt)
		sim := &dense.Matrix32{Rows: rows, Cols: nt, Data: s.blocks[worker].Data[:rows*nt]}
		block := &dense.Matrix32{Rows: rows, Cols: a.Cols, Data: a.Data[start*a.Cols : end*a.Cols]}
		dense.MulBTInto32(sim, block, b, 1)
		h := &s.heaps[worker]
		for r := 0; r < rows; r++ {
			h.selectInto32(out.Idx[start+r], out.Score[start+r], sim.Row(r))
		}
	})
	return out
}

// selectInto32 is selectInto over a float32 similarity row: candidates
// are compared on the stored half-width values and the winners' scores
// widen on output. float32→float64 conversion is monotonic and
// injective, so the (score desc, index asc) order of the widened row
// equals the float32 order.
func (h *candHeap) selectInto32(outIdx []int32, outScore []float64, row []float32) {
	k := len(outIdx)
	if k == 0 {
		return
	}
	h.idx = h.idx[:0]
	h.score = h.score[:0]
	for j, f := range row {
		v := float64(f)
		if len(h.idx) < k {
			h.idx = append(h.idx, int32(j))
			h.score = append(h.score, v)
			h.siftUp(len(h.idx) - 1)
			continue
		}
		if v > h.score[0] || (v == h.score[0] && int32(j) < h.idx[0]) {
			h.idx[0], h.score[0] = int32(j), v
			h.siftDown(0, k)
		}
	}
	n := len(h.idx)
	for p := n - 1; p >= 0; p-- {
		outIdx[p], outScore[p] = h.idx[0], h.score[0]
		h.swap(0, n-1)
		n--
		h.siftDown(0, n)
	}
}

// annScratch32 is annScratch on the float32 tier: half-width
// centered/normalised copies feeding the index's Fit32/TopK32 path. The
// same amortisation applies — iterations after the first reuse the
// copies, planes and bucket arrays.
type annScratch32 struct {
	p    ann.Params
	a, b *dense.Matrix32
	ix   *ann.Index
}

// topK mirrors annScratch.topK: a full-probe float32 index reproduces
// topkScratch32.topK bit for bit (the re-rank rounds to float32 before
// widening, matching the blocked kernel's store).
func (s *annScratch32) topK(hs, ht *dense.Matrix, k, workers int) *Candidates {
	if k < 1 {
		panic(fmt.Sprintf("align: ANNCandidates k = %d < 1", k))
	}
	s.a = dense.Ensure32(s.a, hs.Rows, hs.Cols)
	s.b = dense.Ensure32(s.b, ht.Rows, ht.Cols)
	dense.CenterNormalizeRowsInto32(s.a, hs)
	dense.CenterNormalizeRowsInto32(s.b, ht)
	if s.ix == nil {
		s.ix = ann.New(s.p)
	}
	s.ix.Fit32(s.b, workers)
	r := s.ix.TopK32(s.a, k, workers)
	return &Candidates{K: r.K, Idx: r.Idx, Score: r.Score}
}

func (s *annScratch32) stats() ann.Stats {
	if s.ix == nil {
		return ann.Stats{}
	}
	return s.ix.Stats()
}
