package align

import (
	"fmt"

	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/par"
)

// Candidates holds, for every query node, its k most similar nodes on the
// other side with their similarity scores, in descending score order
// (ties by lower index). It is the memory-bounded alternative to the full
// ns×nt similarity matrix: O(n·k) instead of O(n²), computed in row
// blocks. Both per-row slices of one Candidates share two backing arrays,
// so a whole structure costs two allocations plus headers.
type Candidates struct {
	K int
	// Idx[i] lists the candidate ids of query i, best first.
	Idx [][]int32
	// Score[i] holds the matching similarities.
	Score [][]float64
}

// topkScratch is the reusable working set of blocked top-k similarity:
// the centered/normalised embedding copies and one similarity block per
// worker. A fine-tuning loop keeps one scratch per direction, so
// iterations after the first allocate only their output Candidates.
type topkScratch struct {
	a, b   *dense.Matrix   // centered + row-normalised embedding copies
	blocks []*dense.Matrix // per-worker sim-block buffers
	heaps  []candHeap      // per-worker top-k selection heaps
}

// TopKCandidates computes the top-k Pearson-similar target rows for every
// source row without materialising more than a block of the similarity
// matrix at a time. The one-shot convenience form of topkScratch.topK.
func TopKCandidates(hs, ht *dense.Matrix, k int) *Candidates {
	s := &topkScratch{}
	return s.topK(hs, ht, k, 0)
}

// topkBlockFloats bounds one similarity block: 2¹⁹ float64s = 4 MiB, so a
// block stays cache-friendly and the per-worker scratch of a wide fan-out
// stays bounded even on very wide target sides.
const topkBlockFloats = 1 << 19

// topkBlockRows sizes a similarity block for nt target columns.
func topkBlockRows(nt int) int {
	if nt < 1 {
		return 256
	}
	rows := topkBlockFloats / nt
	if rows < 16 {
		return 16
	}
	if rows > 256 {
		return 256
	}
	return rows
}

// topK fills a fresh Candidates with every source row's top-k most
// Pearson-similar target rows. The row blocks fan out across at most
// `workers` goroutines (≤ 0 = GOMAXPROCS); every block is written by
// exactly one worker and rows are scored by sequential dot products, so
// the result is bit-identical to the dense Corr for every worker count.
func (s *topkScratch) topK(hs, ht *dense.Matrix, k, workers int) *Candidates {
	if k < 1 {
		panic(fmt.Sprintf("align: TopKCandidates k = %d < 1", k))
	}
	if k > ht.Rows {
		k = ht.Rows
	}
	// One fused pass per direction replaces the copy + center + normalize
	// sequence — bit-identical arithmetic, a third of the memory traffic.
	s.a = dense.Ensure(s.a, hs.Rows, hs.Cols)
	s.b = dense.Ensure(s.b, ht.Rows, ht.Cols)
	dense.CenterNormalizeRowsInto(s.a, hs)
	dense.CenterNormalizeRowsInto(s.b, ht)

	ns, nt := hs.Rows, ht.Rows
	out := &Candidates{
		K:     k,
		Idx:   make([][]int32, ns),
		Score: make([][]float64, ns),
	}
	// All rows share two backing arrays: two allocations for the whole
	// structure instead of two per row.
	idxBack := make([]int32, ns*k)
	scoreBack := make([]float64, ns*k)
	for i := 0; i < ns; i++ {
		out.Idx[i] = idxBack[i*k : i*k+k : i*k+k]
		out.Score[i] = scoreBack[i*k : i*k+k : i*k+k]
	}
	if ns == 0 || k == 0 {
		return out
	}

	blockRows := topkBlockRows(nt)
	nBlocks := (ns + blockRows - 1) / blockRows
	w := par.Resolve(workers)
	if w > nBlocks {
		w = nBlocks
	}
	if len(s.blocks) < w {
		s.blocks = append(s.blocks, make([]*dense.Matrix, w-len(s.blocks))...)
	}
	if len(s.heaps) < w {
		s.heaps = append(s.heaps, make([]candHeap, w-len(s.heaps))...)
	}
	a, b := s.a, s.b
	par.Sharded(w, nBlocks, func(worker, blk int) {
		start := blk * blockRows
		end := start + blockRows
		if end > ns {
			end = ns
		}
		rows := end - start
		s.blocks[worker] = dense.Ensure(s.blocks[worker], blockRows, nt)
		sim := &dense.Matrix{Rows: rows, Cols: nt, Data: s.blocks[worker].Data[:rows*nt]}
		block := &dense.Matrix{Rows: rows, Cols: a.Cols, Data: a.Data[start*a.Cols : end*a.Cols]}
		// The fan-out lives at the block level; the kernel itself runs
		// serially inside its worker.
		dense.MulBTInto(sim, block, b, 1)
		h := &s.heaps[worker]
		for r := 0; r < rows; r++ {
			h.selectInto(out.Idx[start+r], out.Score[start+r], sim.Row(r))
		}
	})
	return out
}

// candHeap selects the k largest entries of a row deterministically: a
// fixed-capacity min-heap ordered by "worse first", where worse means a
// smaller score or, on equal scores, a larger index. Popping everything
// back-to-front therefore yields descending scores with ties by lower
// index — exactly the order a stable descending sort would produce.
type candHeap struct {
	idx   []int32
	score []float64
}

// worse reports whether heap slot a holds a strictly worse candidate
// than slot b.
func (h *candHeap) worse(a, b int) bool {
	if h.score[a] != h.score[b] {
		return h.score[a] < h.score[b]
	}
	return h.idx[a] > h.idx[b]
}

func (h *candHeap) swap(a, b int) {
	h.idx[a], h.idx[b] = h.idx[b], h.idx[a]
	h.score[a], h.score[b] = h.score[b], h.score[a]
}

func (h *candHeap) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.worse(i, p) {
			return
		}
		h.swap(i, p)
		i = p
	}
}

func (h *candHeap) siftDown(i, n int) {
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h.worse(r, l) {
			m = r
		}
		if !h.worse(m, i) {
			return
		}
		h.swap(i, m)
		i = m
	}
}

// selectInto writes row's k largest entries (k = len(outIdx), descending,
// ties by lower index) into the output slices.
func (h *candHeap) selectInto(outIdx []int32, outScore []float64, row []float64) {
	k := len(outIdx)
	if k == 0 {
		return
	}
	h.idx = h.idx[:0]
	h.score = h.score[:0]
	for j, v := range row {
		if len(h.idx) < k {
			h.idx = append(h.idx, int32(j))
			h.score = append(h.score, v)
			h.siftUp(len(h.idx) - 1)
			continue
		}
		// Strictly better than the current worst? (On a score tie the
		// lower index — already in the heap — wins.)
		if v > h.score[0] || (v == h.score[0] && int32(j) < h.idx[0]) {
			h.idx[0], h.score[0] = int32(j), v
			h.siftDown(0, k)
		}
	}
	// Pop worst-first into the tail of the output.
	n := len(h.idx)
	for p := n - 1; p >= 0; p-- {
		outIdx[p], outScore[p] = h.idx[0], h.score[0]
		h.swap(0, n-1)
		n--
		h.siftDown(0, n)
	}
}

// SparseLISI evaluates the LISI score only on candidate pairs: forward
// holds source→target candidates, backward target→source. The hubness
// degrees of Eq. 10 are estimated from each side's own top-m candidate
// scores — exact whenever k ≥ m. It returns, for every source node, its
// best candidate by LISI (−1 when the node has no candidates); ties
// resolve to the lower candidate index, the dense argmax rule.
func SparseLISI(forward, backward *Candidates, m int) []int {
	dt := topMeansInto(nil, forward, m)
	ds := topMeansInto(nil, backward, m)
	return sparseBest(forward, dt, ds, false)
}

// sparseBest returns each query's best candidate under the LISI
// transform, with ties to the lower candidate index. The transform is
// always evaluated as 2·s − Dt(source) − Ds(target) — float subtraction
// is order-sensitive, so both scan directions must associate exactly
// like the dense LISI kernel to stay bit-identical to it. rowIsTarget
// selects which of dRow/dCand is the source hubness: false means rows
// are sources (dRow = Dt), true means rows are targets (dRow = Ds).
func sparseBest(c *Candidates, dRow, dCand []float64, rowIsTarget bool) []int {
	best := make([]int, len(c.Idx))
	for i, cands := range c.Idx {
		best[i] = -1
		bestScore := 0.0
		for p, j := range cands {
			var score float64
			if rowIsTarget {
				score = 2*c.Score[i][p] - dCand[j] - dRow[i]
			} else {
				score = 2*c.Score[i][p] - dRow[i] - dCand[j]
			}
			if best[i] < 0 || score > bestScore || (score == bestScore && int(j) < best[i]) {
				best[i], bestScore = int(j), score
			}
		}
	}
	return best
}

// TrustedPairsTopK returns the mutual-best pairs under SparseLISI: (i, j)
// is trusted iff j is i's best candidate and i is j's best candidate, each
// judged by LISI in its own direction. With k = n it reproduces the dense
// TrustedPairs(LISI(corr, m)).
func TrustedPairsTopK(forward, backward *Candidates, m int) [][2]int {
	dt := topMeansInto(nil, forward, m)
	ds := topMeansInto(nil, backward, m)
	return trustedPairsCands(forward, backward, dt, ds)
}

// trustedPairsCands is TrustedPairsTopK with the hubness vectors already
// computed (the fine-tuning loop reuses them for the LISI transform).
func trustedPairsCands(forward, backward *Candidates, dt, ds []float64) [][2]int {
	fb := sparseBest(forward, dt, ds, false)
	bb := sparseBest(backward, ds, dt, true)
	var pairs [][2]int
	for i, j := range fb {
		if j >= 0 && bb[j] == i {
			pairs = append(pairs, [2]int{i, j})
		}
	}
	return pairs
}

// topMeansInto fills dst (reallocating if needed) with, per query, the
// mean of its top-m candidate scores — the hubness degree estimate. The
// scores are summed in descending order, matching the dense topMean, so
// the two backends agree bit-for-bit when k ≥ m.
func topMeansInto(dst []float64, c *Candidates, m int) []float64 {
	dst = ensureVec(dst, len(c.Score))
	for i, scores := range c.Score {
		lim := m
		if lim > len(scores) {
			lim = len(scores)
		}
		if lim == 0 {
			dst[i] = 0
			continue
		}
		var s float64
		for _, v := range scores[:lim] {
			s += v
		}
		dst[i] = s / float64(lim)
	}
	return dst
}

// lisiTransform rewrites candidate scores from raw similarity to the LISI
// of Eq. 11 — score(i,j) ← 2·score − dt[i] − ds[j] — and re-sorts every
// row into descending LISI order (ties by lower index), restoring the
// Candidates ordering contract under the new scores.
func lisiTransform(c *Candidates, dt, ds []float64) {
	for i, cands := range c.Idx {
		scores := c.Score[i]
		di := dt[i]
		for p, j := range cands {
			scores[p] = 2*scores[p] - di - ds[j]
		}
		sortRowDesc(cands, scores)
	}
}
