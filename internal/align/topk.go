package align

import (
	"fmt"
	"sort"

	"github.com/htc-align/htc/internal/dense"
)

// Candidates holds, for every query node, its k most similar nodes on the
// other side with their Pearson similarities, in descending score order.
// It is the memory-bounded alternative to the full ns×nt similarity
// matrix: O(n·k) instead of O(n²), computed in row blocks.
type Candidates struct {
	K int
	// Idx[i] lists the candidate ids of query i, best first.
	Idx [][]int32
	// Score[i] holds the matching similarities.
	Score [][]float64
}

// TopKCandidates computes the top-k Pearson-similar target rows for every
// source row without materialising more than a block of the similarity
// matrix at a time.
func TopKCandidates(hs, ht *dense.Matrix, k int) *Candidates {
	if k < 1 {
		panic(fmt.Sprintf("align: TopKCandidates k = %d < 1", k))
	}
	if k > ht.Rows {
		k = ht.Rows
	}
	a, b := hs.Clone(), ht.Clone()
	a.CenterRows()
	a.NormalizeRows()
	b.CenterRows()
	b.NormalizeRows()

	out := &Candidates{
		K:     k,
		Idx:   make([][]int32, hs.Rows),
		Score: make([][]float64, hs.Rows),
	}
	const blockRows = 256
	for start := 0; start < a.Rows; start += blockRows {
		end := start + blockRows
		if end > a.Rows {
			end = a.Rows
		}
		block := &dense.Matrix{Rows: end - start, Cols: a.Cols, Data: a.Data[start*a.Cols : end*a.Cols]}
		sim := dense.MulBT(block, b)
		for r := 0; r < sim.Rows; r++ {
			idx, score := selectTopK(sim.Row(r), k)
			out.Idx[start+r] = idx
			out.Score[start+r] = score
		}
	}
	return out
}

// selectTopK returns the indices and values of the k largest entries of
// row, descending. Ties resolve to lower indices for determinism.
func selectTopK(row []float64, k int) ([]int32, []float64) {
	idx := make([]int32, len(row))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.SliceStable(idx, func(a, b int) bool { return row[idx[a]] > row[idx[b]] })
	idx = idx[:k]
	outIdx := append([]int32(nil), idx...)
	score := make([]float64, k)
	for i, j := range outIdx {
		score[i] = row[j]
	}
	return outIdx, score
}

// SparseLISI evaluates the LISI score only on candidate pairs: forward
// holds source→target candidates, backward target→source. The hubness
// degrees of Eq. 10 are estimated from each side's own top-m candidate
// scores — exact whenever k ≥ m. It returns, for every source node, its
// best candidate by LISI (−1 when the node has no candidates).
func SparseLISI(forward, backward *Candidates, m int) []int {
	dt := topMeans(forward, m)
	ds := topMeans(backward, m)
	best := make([]int, len(forward.Idx))
	for i, cands := range forward.Idx {
		best[i] = -1
		bestScore := 0.0
		for c, j := range cands {
			score := 2*forward.Score[i][c] - dt[i] - ds[j]
			if best[i] < 0 || score > bestScore {
				best[i], bestScore = int(j), score
			}
		}
	}
	return best
}

// TrustedPairsTopK returns the mutual-best pairs under SparseLISI: (i, j)
// is trusted iff j is i's best candidate and i is j's best candidate, each
// judged by LISI in its own direction. With k = n it reproduces the dense
// TrustedPairs(LISI(corr, m)).
func TrustedPairsTopK(forward, backward *Candidates, m int) [][2]int {
	fb := SparseLISI(forward, backward, m)
	bb := SparseLISI(backward, forward, m)
	var pairs [][2]int
	for i, j := range fb {
		if j >= 0 && bb[j] == i {
			pairs = append(pairs, [2]int{i, j})
		}
	}
	return pairs
}

// topMeans returns, per query, the mean of its top-m candidate scores (the
// hubness degree estimate).
func topMeans(c *Candidates, m int) []float64 {
	out := make([]float64, len(c.Score))
	for i, scores := range c.Score {
		lim := m
		if lim > len(scores) {
			lim = len(scores)
		}
		if lim == 0 {
			continue
		}
		var s float64
		for _, v := range scores[:lim] {
			s += v
		}
		out[i] = s / float64(lim)
	}
	return out
}
