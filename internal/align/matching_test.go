package align

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/htc-align/htc/internal/dense"
)

// bruteBestMatching enumerates all injective assignments of rows to
// columns and returns the maximum total score. Exponential; for tiny
// matrices only.
func bruteBestMatching(m *dense.Matrix) float64 {
	cols := make([]int, m.Cols)
	for j := range cols {
		cols[j] = j
	}
	best := math.Inf(-1)
	var rec func(row int, used []bool, score float64, taken int)
	size := m.Rows
	if m.Cols < size {
		size = m.Cols
	}
	rec = func(row int, used []bool, score float64, taken int) {
		if taken == size || row == m.Rows {
			if taken == size && score > best {
				best = score
			}
			return
		}
		// Skip this row (only allowed when rows > cols).
		if m.Rows-row-1 >= size-taken {
			rec(row+1, used, score, taken)
		}
		for j := 0; j < m.Cols; j++ {
			if !used[j] {
				used[j] = true
				rec(row+1, used, score+m.At(row, j), taken+1)
				used[j] = false
			}
		}
	}
	rec(0, make([]bool, m.Cols), 0, 0)
	return best
}

func randomScore(r, c int, rng *rand.Rand) *dense.Matrix {
	m := dense.New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestGreedyMatchPermutation(t *testing.T) {
	// With a dominant diagonal-like structure, greedy must recover it.
	m := dense.FromRows([][]float64{
		{0.1, 0.9, 0.2},
		{0.8, 0.1, 0.3},
		{0.2, 0.3, 0.7},
	})
	match := GreedyMatch(m)
	want := []int{1, 0, 2}
	for i := range want {
		if match[i] != want[i] {
			t.Fatalf("match = %v, want %v", match, want)
		}
	}
}

func TestGreedyMatchInjective(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomScore(1+rng.Intn(8), 1+rng.Intn(8), rng)
		match := GreedyMatch(m)
		seen := map[int]bool{}
		matched := 0
		for _, j := range match {
			if j < 0 {
				continue
			}
			if seen[j] {
				return false
			}
			seen[j] = true
			matched++
		}
		// Greedy must saturate the smaller side.
		size := m.Rows
		if m.Cols < size {
			size = m.Cols
		}
		return matched == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestHungarianMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(6), 1+rng.Intn(6)
		m := randomScore(r, c, rng)
		match := HungarianMatch(m)
		got := MatchScore(m, match)
		want := bruteBestMatching(m)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestHungarianBeatsOrEqualsGreedy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomScore(2+rng.Intn(10), 2+rng.Intn(10), rng)
		return MatchScore(m, HungarianMatch(m))+1e-9 >= MatchScore(m, GreedyMatch(m))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestHungarianKnownCase(t *testing.T) {
	// Greedy fails this classic case; Hungarian must not.
	m := dense.FromRows([][]float64{
		{10, 9},
		{9, 1},
	})
	// Greedy takes (0,0)=10 then (1,1)=1 → 11; optimal is 9+9 = 18.
	match := HungarianMatch(m)
	if got := MatchScore(m, match); got != 18 {
		t.Fatalf("Hungarian score = %v, want 18 (match %v)", got, match)
	}
}

func TestHungarianRectangular(t *testing.T) {
	// More rows than columns: exactly cols rows get matched.
	m := dense.FromRows([][]float64{
		{5, 0},
		{0, 5},
		{4, 4},
	})
	match := HungarianMatch(m)
	matched := 0
	for _, j := range match {
		if j >= 0 {
			matched++
		}
	}
	if matched != 2 {
		t.Fatalf("matched %d rows, want 2 (match %v)", matched, match)
	}
	if got := MatchScore(m, match); got != 10 {
		t.Fatalf("score = %v, want 10", got)
	}
}

func TestHungarianNegativeScores(t *testing.T) {
	m := dense.FromRows([][]float64{
		{-1, -5},
		{-5, -1},
	})
	match := HungarianMatch(m)
	if got := MatchScore(m, match); got != -2 {
		t.Fatalf("score = %v, want -2", got)
	}
}

func TestHungarianEmpty(t *testing.T) {
	if out := HungarianMatch(dense.New(0, 3)); len(out) != 0 {
		t.Fatal("empty rows must give empty match")
	}
	out := HungarianMatch(dense.New(2, 0))
	if out[0] != -1 || out[1] != -1 {
		t.Fatal("zero columns must leave rows unmatched")
	}
}

func TestMatchScoreIgnoresUnmatched(t *testing.T) {
	m := dense.FromRows([][]float64{{1, 2}, {3, 4}})
	if got := MatchScore(m, []int{-1, 0}); got != 3 {
		t.Fatalf("score = %v, want 3", got)
	}
}
