package align

import (
	"fmt"

	"github.com/htc-align/htc/internal/ann"
	"github.com/htc-align/htc/internal/dense"
)

// annScratch mirrors topkScratch for the LSH candidate generator: the
// centered/normalised embedding copies plus a reusable index. One
// scratch serves one direction of a fine-tuning loop; iterations after
// the first reuse the copies, planes and bucket arrays and allocate only
// their output Candidates — the same amortisation as the blocked scan.
type annScratch struct {
	p    ann.Params
	a, b *dense.Matrix
	ix   *ann.Index
}

// topK fills a fresh Candidates with every source row's approximately
// top-k most Pearson-similar target rows. Centering and row-normalising
// both sides first turns the inner products the index ranks by into
// exactly the Pearson scores of the blocked exact scan — same floats,
// same (score desc, id asc) ordering — so a full-probe index reproduces
// topkScratch.topK bit for bit, and downstream consumers (hubness, LISI,
// trusted pairs, integration) run unchanged on the candidate lists.
func (s *annScratch) topK(hs, ht *dense.Matrix, k, workers int) *Candidates {
	if k < 1 {
		panic(fmt.Sprintf("align: ANNCandidates k = %d < 1", k))
	}
	s.a = dense.Ensure(s.a, hs.Rows, hs.Cols)
	s.b = dense.Ensure(s.b, ht.Rows, ht.Cols)
	dense.CenterNormalizeRowsInto(s.a, hs)
	dense.CenterNormalizeRowsInto(s.b, ht)
	if s.ix == nil {
		s.ix = ann.New(s.p)
	}
	s.ix.Fit(s.b, workers)
	r := s.ix.TopK(s.a, k, workers)
	// Result and Candidates share their layout; adopt the backing
	// arrays without copying.
	return &Candidates{K: r.K, Idx: r.Idx, Score: r.Score}
}

// stats returns the scratch's accumulated index statistics; the zero
// block if the index was never built.
func (s *annScratch) stats() ann.Stats {
	if s.ix == nil {
		return ann.Stats{}
	}
	return s.ix.Stats()
}

// ANNCandidates computes every source row's approximately top-k most
// Pearson-similar target rows through an LSH index — the sub-quadratic
// alternative to TopKCandidates. With p.Probes ≥ 2^p.Bits (the exactness
// escape hatch) the output is bit-identical to TopKCandidates. Workers
// follows the TopKCandidates contract: 0 means every core, and the
// result is identical for every worker count.
func ANNCandidates(hs, ht *dense.Matrix, k int, p ann.Params, workers int) *Candidates {
	c, _ := ANNCandidatesStats(hs, ht, k, p, workers)
	return c
}

// ANNCandidatesStats is ANNCandidates returning the index's
// skew-observability block alongside the candidates.
func ANNCandidatesStats(hs, ht *dense.Matrix, k int, p ann.Params, workers int) (*Candidates, ann.Stats) {
	s := &annScratch{p: p}
	c := s.topK(hs, ht, k, workers)
	return c, s.stats()
}

// CandidateRecall measures how much of the exact candidate set an
// approximate one recovered: the fraction of (query, candidate) pairs of
// `want` also present in `got`, pooled over all queries. 1.0 means every
// exact top-k candidate survived the pruning.
func CandidateRecall(got, want *Candidates) float64 {
	seen := make(map[int32]bool)
	var hit, total int
	for i, wantRow := range want.Idx {
		for k := range seen {
			delete(seen, k)
		}
		if i < len(got.Idx) {
			for _, j := range got.Idx[i] {
				seen[j] = true
			}
		}
		for _, j := range wantRow {
			total++
			if seen[j] {
				hit++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(hit) / float64(total)
}
