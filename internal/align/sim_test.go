package align

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/htc-align/htc/internal/dense"
)

// fullTopKSim wraps a dense score matrix as a top-k representation with
// k = cols, i.e. every pair is a candidate — the regime where the two
// backends must agree bit-for-bit.
func fullTopKSim(m *dense.Matrix) *TopKSim {
	c := &Candidates{K: m.Cols, Idx: make([][]int32, m.Rows), Score: make([][]float64, m.Rows)}
	for i := 0; i < m.Rows; i++ {
		idx := make([]int32, m.Cols)
		score := make([]float64, m.Cols)
		for j := range idx {
			idx[j] = int32(j)
		}
		copy(score, m.Row(i))
		sortRowDesc(idx, score)
		c.Idx[i] = idx
		c.Score[i] = score
	}
	return &TopKSim{C: c, Cols: m.Cols}
}

// topKLISISim runs the sparse fine-tune scoring step at candidate count k:
// forward/backward candidates, hubness estimates, LISI transform.
func topKLISISim(hs, ht *dense.Matrix, k, m int) (*TopKSim, [][2]int) {
	var fs, bs topkScratch
	fwd := fs.topK(hs, ht, k, 0)
	bwd := bs.topK(ht, hs, k, 0)
	dt := topMeansInto(nil, fwd, m)
	ds := topMeansInto(nil, bwd, m)
	pairs := trustedPairsCands(fwd, bwd, dt, ds)
	lisiTransform(fwd, dt, ds)
	return &TopKSim{C: fwd, Cols: ht.Rows}, pairs
}

// TestTopKLISIFullEqualsDense: at k = n the sparse LISI representation
// must reproduce the dense LISI(Corr) matrix bit-for-bit, pair by pair,
// including the trusted-pair set and the per-row argmax.
func TestTopKLISIFullEqualsDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ns, nt, d := 2+rng.Intn(14), 2+rng.Intn(14), 2+rng.Intn(5)
		hs := randomEmbeddings(ns, d, rng)
		ht := randomEmbeddings(nt, d, rng)
		m := 1 + rng.Intn(6)

		denseLISI := LISI(Corr(hs, ht), m)
		k := nt
		if ns > k {
			k = ns
		}
		sparse, sparsePairs := topKLISISim(hs, ht, k, m)

		for i := 0; i < ns; i++ {
			for j := 0; j < nt; j++ {
				got, ok := sparse.At(i, j)
				if !ok || got != denseLISI.At(i, j) {
					t.Logf("seed %d: (%d,%d) sparse %v (ok=%v) dense %v", seed, i, j, got, ok, denseLISI.At(i, j))
					return false
				}
			}
		}
		densePairs := TrustedPairs(denseLISI)
		if len(sparsePairs) != len(densePairs) {
			return false
		}
		for i := range densePairs {
			if sparsePairs[i] != densePairs[i] {
				return false
			}
		}
		densePred := denseLISI.ArgmaxRows()
		for i, p := range sparse.Predict() {
			if p != densePred[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestIntegrateSimsFullEqualsDense: integrating full top-k sims must
// reproduce the dense Integrate bit-for-bit (same accumulation order).
func TestIntegrateSimsFullEqualsDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 2+rng.Intn(10), 2+rng.Intn(10)
		orbits := 1 + rng.Intn(4)
		ms := make([]*dense.Matrix, orbits)
		dsims := make([]Sim, orbits)
		tsims := make([]Sim, orbits)
		trusted := make([]int, orbits)
		for k := range ms {
			ms[k] = randomEmbeddings(rows, cols, rng)
			dsims[k] = DenseSim{M: ms[k]}
			tsims[k] = fullTopKSim(ms[k])
			trusted[k] = rng.Intn(5)
		}
		dres, dg := IntegrateSims(dsims, trusted)
		tres, tg := IntegrateSims(tsims, trusted)
		for k := range dg {
			if dg[k] != tg[k] {
				return false
			}
		}
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				dv, _ := dres.At(i, j)
				tv, ok := tres.At(i, j)
				if !ok || dv != tv {
					return false
				}
			}
		}
		dp, tp := dres.Predict(), tres.Predict()
		for i := range dp {
			if dp[i] != tp[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestGreedyMatchSimFullEqualsDense: the candidate-aware greedy matcher
// at k = cols must produce exactly the dense matching (shared tie rules).
func TestGreedyMatchSimFullEqualsDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(12), 1+rng.Intn(12)
		m := randomEmbeddings(rows, cols, rng)
		dm := GreedyMatch(m)
		tm := GreedyMatchSim(fullTopKSim(m))
		for i := range dm {
			if dm[i] != tm[i] {
				return false
			}
		}
		if MatchScore(m, dm) != MatchScoreSim(fullTopKSim(m), tm) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestGreedyMatchDeterministicTies: with every score equal, the greedy
// matcher must resolve ties to the identity prefix on both backends.
func TestGreedyMatchDeterministicTies(t *testing.T) {
	m := dense.New(3, 4)
	m.Fill(1)
	want := []int{0, 1, 2}
	for name, got := range map[string][]int{
		"dense": GreedyMatch(m),
		"topk":  GreedyMatchSim(fullTopKSim(m)),
	} {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: match = %v, want identity prefix", name, got)
			}
		}
	}
}

// TestGreedyMatchSimPartialCandidates: with k = 1 every source competes
// for its single candidate; losers stay unmatched rather than matching a
// pair the representation never scored.
func TestGreedyMatchSimPartialCandidates(t *testing.T) {
	c := &Candidates{
		K:     1,
		Idx:   [][]int32{{0}, {0}},
		Score: [][]float64{{0.9}, {0.5}},
	}
	got := GreedyMatchSim(&TopKSim{C: c, Cols: 3})
	if got[0] != 0 || got[1] != -1 {
		t.Fatalf("match = %v, want [0 -1]", got)
	}
}

// TestFineTuneTopKFullEqualsDense: the whole refinement loop run under
// the top-k backend at k = n must reproduce the dense loop exactly —
// trusted counts, iteration counts and every represented score.
func TestFineTuneTopKFullEqualsDense(t *testing.T) {
	gs, gt, _ := buildAlignedPair(26, 11)
	enc, src, tgt := trainEncoder(gs, gt, 2, 12)

	base := FineTuneConfig{M: 5, Beta: 1.1, MaxIters: 6}
	dres := FineTune(enc, src.Laps[0], tgt.Laps[0], src.X, tgt.X, base)

	topk := base
	topk.TopK = 26
	tres := FineTune(enc, src.Laps[0], tgt.Laps[0], src.X, tgt.X, topk)

	if dres.Trusted != tres.Trusted || dres.Iters != tres.Iters {
		t.Fatalf("dense (trusted=%d iters=%d) vs topk (trusted=%d iters=%d)",
			dres.Trusted, dres.Iters, tres.Trusted, tres.Iters)
	}
	if tres.M != nil {
		t.Fatal("top-k backend must not materialise a dense matrix")
	}
	if tres.Sim.Backend() != BackendTopK || dres.Sim.Backend() != BackendDense {
		t.Fatalf("backends %q / %q", dres.Sim.Backend(), tres.Sim.Backend())
	}
	rows, cols := dres.Sim.Dims()
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			dv, _ := dres.Sim.At(i, j)
			tv, ok := tres.Sim.At(i, j)
			if !ok || dv != tv {
				t.Fatalf("(%d,%d): dense %v, topk %v (ok=%v)", i, j, dv, tv, ok)
			}
		}
	}
}

// TestTopKSimDense: materialising a sparse sim floors absent pairs below
// every candidate score.
func TestTopKSimDense(t *testing.T) {
	c := &Candidates{
		K:     2,
		Idx:   [][]int32{{2, 0}},
		Score: [][]float64{{-0.25, -0.5}},
	}
	m := (&TopKSim{C: c, Cols: 4}).Dense()
	if m.At(0, 2) != -0.25 || m.At(0, 0) != -0.5 {
		t.Fatalf("candidate scores not preserved: %v", m.Data)
	}
	for _, j := range []int{1, 3} {
		if m.At(0, j) >= -0.5 {
			t.Fatalf("absent pair (0,%d) = %v not floored below candidates", j, m.At(0, j))
		}
	}
	if m.ArgmaxRows()[0] != 2 {
		t.Fatalf("argmax over materialised matrix = %d, want 2", m.ArgmaxRows()[0])
	}
}

// TestTopKCandidatesWorkersIdentical: the block fan-out must be a pure
// performance knob — every worker count yields the same candidates.
func TestTopKCandidatesWorkersIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	hs := randomEmbeddings(300, 5, rng)
	ht := randomEmbeddings(90, 5, rng)
	var s1, s4 topkScratch
	a := s1.topK(hs, ht, 7, 1)
	b := s4.topK(hs, ht, 7, 4)
	for i := range a.Idx {
		for c := range a.Idx[i] {
			if a.Idx[i][c] != b.Idx[i][c] || a.Score[i][c] != b.Score[i][c] {
				t.Fatalf("row %d cand %d differs across worker counts", i, c)
			}
		}
	}
}
