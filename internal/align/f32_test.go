package align

import (
	"reflect"
	"testing"

	"github.com/htc-align/htc/internal/ann"
)

// TestF32FullProbeANNMatchesTopK32: the float32 tier carries the
// exactness escape hatch — with Probes ≥ 2^Bits the f32 LSH generator is
// bit-identical to the f32 blocked exact scan, across sizes and seeds.
// This is what the shared store-then-widen rounding convention buys: both
// paths accumulate in float64, round every score to float32 on store and
// compare the widened value.
func TestF32FullProbeANNMatchesTopK32(t *testing.T) {
	for _, n := range []int{1, 17, 64, 150} {
		for seed := int64(1); seed <= 3; seed++ {
			hs, ht := embeddingPair(n, n, 6, seed)
			k := 12
			if k > n {
				k = n
			}
			var ts topkScratch32
			exact := ts.topK(hs, ht, k, 2)
			as := &annScratch32{p: ann.Params{Bits: 4, Probes: 1 << 4, Seed: seed}}
			hatch := as.topK(hs, ht, k, 2)
			if !reflect.DeepEqual(exact, hatch) {
				t.Fatalf("n=%d seed=%d: full-probe f32 ANN deviates from f32 top-k", n, seed)
			}
		}
	}
}

// TestANNRecallPropertyF32 is the float32 face of TestANNRecallProperty:
// across sizes and seeds, the f32 ANN candidate lists recover ≥ 0.95 of
// the f32 exact top-k pairs on auto-resolved parameters.
func TestANNRecallPropertyF32(t *testing.T) {
	worst := 1.0
	for _, tc := range []struct{ ns, nt, seeds int }{
		{120, 120, 4}, {300, 280, 4}, {600, 600, 4}, {900, 1000, 4},
		{1600, 1500, 2}, {2600, 2800, 2},
	} {
		for seed := int64(1); seed <= int64(tc.seeds); seed++ {
			hs, ht := embeddingPair(tc.ns, tc.nt, 8, seed)
			k := 32
			bits := ann.AutoBits(tc.nt)
			var ts topkScratch32
			exact := ts.topK(hs, ht, k, 0)
			as := &annScratch32{p: ann.Params{Bits: bits, Probes: ann.AutoProbes(bits), Seed: seed}}
			approx := as.topK(hs, ht, k, 0)
			rec := CandidateRecall(approx, exact)
			if rec < worst {
				worst = rec
			}
			if rec < 0.95 {
				t.Errorf("ns=%d nt=%d seed=%d bits=%d: f32 recall %.4f < 0.95",
					tc.ns, tc.nt, seed, bits, rec)
			}
		}
	}
	t.Logf("worst-case f32 ANN candidate recall vs f32 exact top-k: %.4f", worst)
}

// TestTopK32RecallVsF64: rounding embeddings to float32 must not disturb
// which candidates make the top-k lists in any material way — the f32 and
// f64 exact scans agree on ≥ 0.95 of the pairs (they differ only where
// float32 rounding swaps near-ties at the list boundary).
func TestTopK32RecallVsF64(t *testing.T) {
	for _, n := range []int{150, 600} {
		for seed := int64(1); seed <= 3; seed++ {
			hs, ht := embeddingPair(n, n, 8, seed)
			k := 16
			var f64s topkScratch
			var f32s topkScratch32
			exact := f64s.topK(hs, ht, k, 2)
			half := f32s.topK(hs, ht, k, 2)
			if rec := CandidateRecall(half, exact); rec < 0.95 {
				t.Errorf("n=%d seed=%d: f32 top-k recall vs f64 %.4f < 0.95", n, seed, rec)
			}
		}
	}
}

// TestFineTuneF32Runs: the fine-tuning loop works end to end on the f32
// tier under both candidate generators, producing a usable Sim and (on
// the ANN generator) the merged stats block.
func TestFineTuneF32Runs(t *testing.T) {
	gs, gt, _ := buildAlignedPair(30, 21)
	enc, src, tgt := trainEncoder(gs, gt, 2, 22)

	base := FineTuneConfig{M: 5, Beta: 1.1, MaxIters: 4, TopK: 10, Workers: 2, F32: true}
	res := FineTune(enc, src.Laps[0], tgt.Laps[0], src.X, tgt.X, base)
	if res.Sim == nil || res.Trusted < 0 {
		t.Fatalf("f32 top-k loop produced no result: %+v", res)
	}
	if res.AnnStats != nil {
		t.Fatal("top-k loop reported ANN stats")
	}

	annCfg := base
	annCfg.Ann = ann.Params{Bits: 4, Probes: 1 << 4, Seed: 1}
	annRes := FineTune(enc, src.Laps[0], tgt.Laps[0], src.X, tgt.X, annCfg)
	if annRes.Sim == nil {
		t.Fatal("f32 ANN loop produced no Sim")
	}
	// Full-probe parameters take the exact path (no hashing), so the
	// stats block records query-side work only.
	if annRes.AnnStats == nil || annRes.AnnStats.Queries <= 0 {
		t.Fatalf("f32 ANN loop reported no stats: %+v", annRes.AnnStats)
	}
	// The full-probe f32 ANN loop must reproduce the f32 top-k loop
	// bit for bit, like the f64 tiers do for each other.
	es, hs := res.Sim.(*TopKSim), annRes.Sim.(*TopKSim)
	if res.Trusted != annRes.Trusted || !reflect.DeepEqual(es.C, hs.C) {
		t.Fatal("full-probe f32 ANN fine-tuning deviates from the f32 top-k loop")
	}
}
