package align

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/htc-align/htc/internal/dense"
)

func randomEmbeddings(n, d int, rng *rand.Rand) *dense.Matrix {
	m := dense.New(n, d)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestTopKCandidatesMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ns, nt, d := 2+rng.Intn(12), 2+rng.Intn(12), 2+rng.Intn(6)
		hs := randomEmbeddings(ns, d, rng)
		ht := randomEmbeddings(nt, d, rng)
		k := 1 + rng.Intn(nt)
		cands := TopKCandidates(hs, ht, k)
		corr := Corr(hs, ht)
		for i := 0; i < ns; i++ {
			if len(cands.Idx[i]) != k {
				return false
			}
			// Descending order and value agreement with the dense matrix.
			prev := math.Inf(1)
			for c, j := range cands.Idx[i] {
				got := cands.Score[i][c]
				if math.Abs(got-corr.At(i, int(j))) > 1e-9 {
					return false
				}
				if got > prev+1e-12 {
					return false
				}
				prev = got
			}
			// The first candidate must be the dense argmax.
			row := corr.Row(i)
			best := 0
			for j, v := range row {
				if v > row[best] {
					best = j
				}
			}
			if math.Abs(corr.At(i, best)-cands.Score[i][0]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTopKCandidatesBlockBoundary(t *testing.T) {
	// More rows than one block (256) to exercise the blocked path.
	rng := rand.New(rand.NewSource(7))
	hs := randomEmbeddings(300, 4, rng)
	ht := randomEmbeddings(40, 4, rng)
	cands := TopKCandidates(hs, ht, 3)
	corr := Corr(hs, ht)
	for _, i := range []int{0, 255, 256, 299} {
		row := corr.Row(i)
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		if int(cands.Idx[i][0]) != best {
			t.Fatalf("row %d: blocked top-1 %d != dense argmax %d", i, cands.Idx[i][0], best)
		}
	}
}

func TestTopKCandidatesClampsK(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cands := TopKCandidates(randomEmbeddings(5, 3, rng), randomEmbeddings(4, 3, rng), 99)
	if cands.K != 4 || len(cands.Idx[0]) != 4 {
		t.Fatalf("k not clamped: %d", cands.K)
	}
}

func TestTopKCandidatesBadKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TopKCandidates(dense.New(2, 2), dense.New(2, 2), 0)
}

// TestTrustedPairsTopKFullEqualsDense: with k = n and the same m, the
// sparse trusted pairs must exactly reproduce the dense
// TrustedPairs(LISI(corr, m)).
func TestTrustedPairsTopKFullEqualsDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ns, nt, d := 2+rng.Intn(10), 2+rng.Intn(10), 3+rng.Intn(4)
		hs := randomEmbeddings(ns, d, rng)
		ht := randomEmbeddings(nt, d, rng)
		m := 1 + rng.Intn(4)

		forward := TopKCandidates(hs, ht, nt)
		backward := TopKCandidates(ht, hs, ns)
		sparsePairs := TrustedPairsTopK(forward, backward, m)

		densePairs := TrustedPairs(LISI(Corr(hs, ht), m))
		if len(sparsePairs) != len(densePairs) {
			return false
		}
		for i := range densePairs {
			if sparsePairs[i] != densePairs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSparseLISIEmptyCandidates(t *testing.T) {
	c := &Candidates{K: 1, Idx: [][]int32{nil}, Score: [][]float64{nil}}
	best := SparseLISI(c, c, 3)
	if best[0] != -1 {
		t.Fatalf("empty candidate list must map to -1, got %d", best[0])
	}
}

func BenchmarkTopKCandidates(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	hs := randomEmbeddings(1000, 32, rng)
	ht := randomEmbeddings(1000, 32, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TopKCandidates(hs, ht, 20)
	}
}
