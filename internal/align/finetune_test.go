package align

import (
	"math/rand"
	"testing"

	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/gom"
	"github.com/htc-align/htc/internal/graph"
	"github.com/htc-align/htc/internal/nn"
	"github.com/htc-align/htc/internal/orbit"
)

// buildAlignedPair creates a graph, an isomorphic copy under a random
// permutation, and feature matrices consistent with the permutation —
// the exact regime where Proposition 1 guarantees matching embeddings.
func buildAlignedPair(n int, seed int64) (gs, gt *graph.Graph, perm []int) {
	rng := rand.New(rand.NewSource(seed))
	gs = graph.ErdosRenyi(n, 0.25, rng)
	x := dense.New(n, 6)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	gs = gs.WithAttrs(x)
	perm = graph.Permutation(n, rng)
	gt = graph.Relabel(gs, perm)
	return gs, gt, perm
}

func trainEncoder(gs, gt *graph.Graph, k int, seed int64) (*nn.Encoder, *nn.GraphData, *nn.GraphData) {
	src := &nn.GraphData{Laps: gom.Build(gs, orbit.Count(gs), k, false).Laplacians, X: gs.Attrs()}
	tgt := &nn.GraphData{Laps: gom.Build(gt, orbit.Count(gt), k, false).Laplacians, X: gt.Attrs()}
	enc := nn.NewEncoder([]int{gs.Attrs().Cols, 8, 4}, []nn.Activation{nn.Tanh{}, nn.Tanh{}}, rand.New(rand.NewSource(seed)))
	nn.Train(enc, src, tgt, nn.TrainConfig{Epochs: 40, LR: 0.02})
	return enc, src, tgt
}

func TestFineTuneRecoversIsomorphicAlignment(t *testing.T) {
	gs, gt, perm := buildAlignedPair(30, 42)
	enc, src, tgt := trainEncoder(gs, gt, 3, 43)

	res := FineTune(enc, src.Laps[0], tgt.Laps[0], src.X, tgt.X, FineTuneConfig{M: 5, Beta: 1.1})
	if res.M == nil {
		t.Fatal("no alignment matrix produced")
	}
	if res.M.Rows != 30 || res.M.Cols != 30 {
		t.Fatalf("alignment shape %dx%d", res.M.Rows, res.M.Cols)
	}
	// On a perfectly consistent pair the argmax prediction must be
	// essentially the ground-truth permutation.
	pred := res.M.ArgmaxRows()
	correct := 0
	for i, j := range pred {
		if j == perm[i] {
			correct++
		}
	}
	if correct < 27 {
		t.Fatalf("only %d/30 nodes aligned on an isomorphic pair", correct)
	}
}

func TestFineTuneTrustedCountPositive(t *testing.T) {
	gs, gt, _ := buildAlignedPair(24, 7)
	enc, src, tgt := trainEncoder(gs, gt, 2, 8)
	res := FineTune(enc, src.Laps[1], tgt.Laps[1], src.X, tgt.X, FineTuneConfig{M: 5, Beta: 1.1})
	if res.Trusted <= 0 {
		t.Fatalf("trusted pairs = %d, want > 0", res.Trusted)
	}
	if res.Iters < 1 {
		t.Fatalf("iters = %d", res.Iters)
	}
}

func TestFineTuneRespectsMaxIters(t *testing.T) {
	gs, gt, _ := buildAlignedPair(20, 9)
	enc, src, tgt := trainEncoder(gs, gt, 1, 10)
	res := FineTune(enc, src.Laps[0], tgt.Laps[0], src.X, tgt.X, FineTuneConfig{M: 5, Beta: 1.5, MaxIters: 2})
	if res.Iters > 2 {
		t.Fatalf("iters = %d exceeds cap", res.Iters)
	}
}

func TestFineTuneDefaultsApplied(t *testing.T) {
	cfg := FineTuneConfig{}.withDefaults()
	if cfg.M != 20 || cfg.Beta != 1.1 || cfg.MaxIters != 30 {
		t.Fatalf("defaults = %+v", cfg)
	}
	// Explicit values survive.
	cfg = FineTuneConfig{M: 7, Beta: 1.3, MaxIters: 5}.withDefaults()
	if cfg.M != 7 || cfg.Beta != 1.3 || cfg.MaxIters != 5 {
		t.Fatalf("explicit config clobbered: %+v", cfg)
	}
}

func TestFineTuneDoesNotMutateLaplacians(t *testing.T) {
	gs, gt, _ := buildAlignedPair(18, 11)
	enc, src, tgt := trainEncoder(gs, gt, 1, 12)
	before := src.Laps[0].ToDense()
	FineTune(enc, src.Laps[0], tgt.Laps[0], src.X, tgt.X, FineTuneConfig{M: 4, Beta: 1.2})
	if !src.Laps[0].ToDense().Equal(before, 0) {
		t.Fatal("FineTune mutated the source Laplacian")
	}
}

func TestFineTuneRectangular(t *testing.T) {
	// Partial alignment: the target is a subgraph with fewer nodes.
	rng := rand.New(rand.NewSource(13))
	gs := graph.ErdosRenyi(26, 0.3, rng)
	xs := dense.New(26, 4)
	for i := range xs.Data {
		xs.Data[i] = rng.NormFloat64()
	}
	gs = gs.WithAttrs(xs)

	// Target: the induced subgraph on the first 15 nodes.
	keep := 15
	b := graph.NewBuilder(keep)
	for _, e := range gs.Edges() {
		if int(e[0]) < keep && int(e[1]) < keep {
			b.AddEdge(int(e[0]), int(e[1]))
		}
	}
	xt := dense.New(keep, 4)
	for i := 0; i < keep; i++ {
		copy(xt.Row(i), xs.Row(i))
	}
	gt := b.Build().WithAttrs(xt)

	enc, src, tgt := trainEncoder(gs, gt, 2, 14)
	res := FineTune(enc, src.Laps[0], tgt.Laps[0], src.X, tgt.X, FineTuneConfig{M: 4, Beta: 1.1})
	if res.M.Rows != 26 || res.M.Cols != keep {
		t.Fatalf("rectangular alignment shape %dx%d", res.M.Rows, res.M.Cols)
	}
}
