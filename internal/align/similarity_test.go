package align

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/htc-align/htc/internal/dense"
)

func TestCorrSelf(t *testing.T) {
	h := dense.FromRows([][]float64{{1, 2, 3}, {-1, 0, 1}})
	c := Corr(h, h)
	if math.Abs(c.At(0, 0)-1) > 1e-12 || math.Abs(c.At(1, 1)-1) > 1e-12 {
		t.Fatalf("self correlation != 1: %v", c)
	}
	// Rows are perfectly linearly related → corr 1 everywhere here.
	if math.Abs(c.At(0, 1)-1) > 1e-12 {
		t.Fatalf("corr of affinely related rows = %v, want 1", c.At(0, 1))
	}
}

func TestCorrAntiCorrelated(t *testing.T) {
	a := dense.FromRows([][]float64{{1, 2, 3}})
	b := dense.FromRows([][]float64{{3, 2, 1}})
	c := Corr(a, b)
	if math.Abs(c.At(0, 0)+1) > 1e-12 {
		t.Fatalf("corr = %v, want -1", c.At(0, 0))
	}
}

func TestCorrConstantRowIsZero(t *testing.T) {
	a := dense.FromRows([][]float64{{5, 5, 5}})
	b := dense.FromRows([][]float64{{1, 2, 3}})
	c := Corr(a, b)
	if c.At(0, 0) != 0 {
		t.Fatalf("constant row corr = %v, want 0", c.At(0, 0))
	}
}

func TestCorrScaleAndTranslationInvariance(t *testing.T) {
	// Pearson correlation must be invariant to per-row affine maps with
	// positive scale — the property the paper cites for choosing it.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 3 + rng.Intn(6)
		a := dense.New(2, d)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		b := a.Clone()
		scale := 0.5 + rng.Float64()*3
		shift := rng.NormFloat64() * 10
		for j := 0; j < d; j++ {
			b.Set(0, j, b.At(0, j)*scale+shift)
		}
		c1 := Corr(a, a)
		c2 := Corr(b, a)
		return math.Abs(c1.At(0, 0)-c2.At(0, 0)) < 1e-9 &&
			math.Abs(c1.At(0, 1)-c2.At(0, 1)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCorrMismatchedDimsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Corr(dense.New(2, 3), dense.New(2, 4))
}

func TestTopMean(t *testing.T) {
	buf := make([]float64, 8)
	xs := []float64{5, 1, 4, 2, 3}
	if got := topMean(xs, 2, buf); got != 4.5 {
		t.Fatalf("topMean m=2 = %v, want 4.5", got)
	}
	if got := topMean(xs, 10, buf); got != 3 {
		t.Fatalf("topMean m>len = %v, want 3", got)
	}
	if got := topMean(xs, 0, buf); got != 0 {
		t.Fatalf("topMean m=0 = %v", got)
	}
	// Input must not be reordered.
	if xs[0] != 5 || xs[4] != 3 {
		t.Fatalf("topMean mutated input: %v", xs)
	}
}

func TestTopMeanMatchesSort(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		m := 1 + rng.Intn(n)
		got := topMean(xs, m, make([]float64, n))
		sorted := append([]float64(nil), xs...)
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
		var want float64
		for _, v := range sorted[:m] {
			want += v
		}
		want /= float64(m)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestHubnessDegrees(t *testing.T) {
	corr := dense.FromRows([][]float64{
		{0.9, 0.1, 0.5},
		{0.2, 0.8, 0.3},
	})
	dt, ds := HubnessDegrees(corr, 2)
	if math.Abs(dt[0]-0.7) > 1e-12 { // top-2 of row 0: 0.9, 0.5
		t.Fatalf("dt[0] = %v", dt[0])
	}
	if math.Abs(ds[2]-0.4) > 1e-12 { // column 2: 0.5, 0.3
		t.Fatalf("ds[2] = %v", ds[2])
	}
}

func TestLISIPenalisesHubs(t *testing.T) {
	// Target node 0 is a hub: similar to both source nodes. LISI must
	// prefer the isolated match (1,1) over the hub match (1,0) even
	// though raw similarity is tied.
	corr := dense.FromRows([][]float64{
		{0.9, 0.0},
		{0.9, 0.9},
	})
	l := LISI(corr, 2)
	if l.At(1, 1) <= l.At(1, 0) {
		t.Fatalf("LISI did not penalise the hub: %v vs %v", l.At(1, 1), l.At(1, 0))
	}
}

func TestLISIFormula(t *testing.T) {
	corr := dense.FromRows([][]float64{{0.5, 0.1}, {0.3, 0.7}})
	m := 1
	dt, ds := HubnessDegrees(corr, m)
	l := LISI(corr, m)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := 2*corr.At(i, j) - dt[i] - ds[j]
			if math.Abs(l.At(i, j)-want) > 1e-12 {
				t.Fatalf("LISI(%d,%d) = %v, want %v", i, j, l.At(i, j), want)
			}
		}
	}
}

func TestTrustedPairsMutualOnly(t *testing.T) {
	m := dense.FromRows([][]float64{
		{0.9, 0.2, 0.1}, // row 0 → col 0
		{0.8, 0.3, 0.2}, // row 1 → col 0 (not mutual: col 0 prefers row 0)
		{0.1, 0.2, 0.7}, // row 2 → col 2
	})
	pairs := TrustedPairs(m)
	want := [][2]int{{0, 0}, {2, 2}}
	if len(pairs) != len(want) {
		t.Fatalf("pairs = %v, want %v", pairs, want)
	}
	for i := range want {
		if pairs[i] != want[i] {
			t.Fatalf("pairs = %v, want %v", pairs, want)
		}
	}
}

func TestTrustedPairsEmpty(t *testing.T) {
	if TrustedPairs(dense.New(0, 5)) != nil {
		t.Fatal("expected nil for empty matrix")
	}
}

func TestTrustedPairsPermutationMatrix(t *testing.T) {
	// A permutation similarity matrix must yield exactly n trusted pairs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		perm := rng.Perm(n)
		m := dense.New(n, n)
		for i := range m.Data {
			m.Data[i] = rng.Float64() * 0.1
		}
		for i, j := range perm {
			m.Set(i, j, 1)
		}
		return len(TrustedPairs(m)) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLISIRectangular(t *testing.T) {
	// Rectangular similarity matrices (partial alignment) must work and
	// keep the formula exact.
	rng := rand.New(rand.NewSource(41))
	corr := dense.New(7, 4)
	for i := range corr.Data {
		corr.Data[i] = rng.Float64()*2 - 1
	}
	m := 3
	dt, ds := HubnessDegrees(corr, m)
	l := LISI(corr, m)
	if l.Rows != 7 || l.Cols != 4 {
		t.Fatalf("LISI shape %dx%d", l.Rows, l.Cols)
	}
	for i := 0; i < 7; i++ {
		for j := 0; j < 4; j++ {
			want := 2*corr.At(i, j) - dt[i] - ds[j]
			if math.Abs(l.At(i, j)-want) > 1e-12 {
				t.Fatalf("LISI(%d,%d) = %v, want %v", i, j, l.At(i, j), want)
			}
		}
	}
}

func TestTrustedPairsCountBounded(t *testing.T) {
	// Mutual-argmax pairs are injective on both sides, so at most
	// min(ns, nt) can exist.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ns, nt := 1+rng.Intn(10), 1+rng.Intn(10)
		m := dense.New(ns, nt)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		pairs := TrustedPairs(m)
		limit := ns
		if nt < limit {
			limit = nt
		}
		if len(pairs) > limit {
			return false
		}
		seenS, seenT := map[int]bool{}, map[int]bool{}
		for _, p := range pairs {
			if seenS[p[0]] || seenT[p[1]] {
				return false
			}
			seenS[p[0]] = true
			seenT[p[1]] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestIntegrateWeights(t *testing.T) {
	m0 := dense.FromRows([][]float64{{1, 0}})
	m1 := dense.FromRows([][]float64{{0, 1}})
	out, gammas := Integrate([]*dense.Matrix{m0, m1}, []int{3, 1})
	if math.Abs(gammas[0]-0.75) > 1e-12 || math.Abs(gammas[1]-0.25) > 1e-12 {
		t.Fatalf("gammas = %v", gammas)
	}
	if math.Abs(out.At(0, 0)-0.75) > 1e-12 || math.Abs(out.At(0, 1)-0.25) > 1e-12 {
		t.Fatalf("integrated = %v", out)
	}
}

func TestIntegrateZeroTrustedFallsBackUniform(t *testing.T) {
	m0 := dense.FromRows([][]float64{{1, 0}})
	m1 := dense.FromRows([][]float64{{0, 1}})
	_, gammas := Integrate([]*dense.Matrix{m0, m1}, []int{0, 0})
	if gammas[0] != 0.5 || gammas[1] != 0.5 {
		t.Fatalf("gammas = %v, want uniform", gammas)
	}
}

func TestIntegrateMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Integrate([]*dense.Matrix{dense.New(1, 1)}, []int{1, 2})
}
