package align

import (
	"math"
	"math/rand"
	"testing"

	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/graph"
	"github.com/htc-align/htc/internal/nn"
	"github.com/htc-align/htc/internal/sparse"
)

// graphFixture returns the symmetric normalised adjacency of a sparse
// random graph — the Laplacian shape FineTune consumes.
func graphFixture(n int, rng *rand.Rand) *sparse.CSR {
	g := graph.ErdosRenyi(n, 0.03, rng)
	inv := make([]float64, n)
	for i, d := range g.DegreeVector() {
		if d > 0 {
			inv[i] = 1 / math.Sqrt(d)
		}
	}
	return g.Adjacency().DiagScale(inv, inv)
}

func encoderFixture(d int, rng *rand.Rand) *nn.Encoder {
	return nn.NewEncoder([]int{d, 16, 8}, []nn.Activation{nn.Tanh{}, nn.Tanh{}}, rng)
}

func benchEmbeddings(n, d int, seed int64) *dense.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := dense.New(n, d)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func BenchmarkCorr1000(b *testing.B) {
	hs := benchEmbeddings(1000, 64, 1)
	ht := benchEmbeddings(1000, 64, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Corr(hs, ht)
	}
}

func BenchmarkLISI1000(b *testing.B) {
	corr := Corr(benchEmbeddings(1000, 64, 3), benchEmbeddings(1000, 64, 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LISI(corr, 20)
	}
}

func BenchmarkTrustedPairs1000(b *testing.B) {
	m := LISI(Corr(benchEmbeddings(1000, 64, 5), benchEmbeddings(1000, 64, 6)), 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TrustedPairs(m)
	}
}

func BenchmarkHubnessDegrees1000(b *testing.B) {
	corr := Corr(benchEmbeddings(1000, 64, 9), benchEmbeddings(1000, 64, 10))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HubnessDegrees(corr, 20)
	}
}

// BenchmarkFineTuneWorkers measures one orbit's full Algorithm 2 loop —
// embed, similarity, LISI, trusted pairs, reinforce, repeat — under an
// explicit worker budget, with its scratch buffers reused across
// iterations.
func BenchmarkFineTuneWorkers(b *testing.B) {
	rng := rand.New(rand.NewSource(20))
	n := 400
	g := graphFixture(n, rng)
	x := benchEmbeddings(n, 6, 21)
	enc := encoderFixture(6, rng)
	for _, w := range []struct {
		label   string
		workers int
	}{{"1", 1}, {"max", 0}} {
		b.Run("workers="+w.label, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				FineTune(enc, g, g, x, x, FineTuneConfig{M: 10, MaxIters: 8, Workers: w.workers})
			}
		})
	}
}

func BenchmarkHungarian200(b *testing.B) {
	m := Corr(benchEmbeddings(200, 32, 7), benchEmbeddings(200, 32, 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HungarianMatch(m)
	}
}
