package align

import (
	"math/rand"
	"testing"

	"github.com/htc-align/htc/internal/dense"
)

func benchEmbeddings(n, d int, seed int64) *dense.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := dense.New(n, d)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func BenchmarkCorr1000(b *testing.B) {
	hs := benchEmbeddings(1000, 64, 1)
	ht := benchEmbeddings(1000, 64, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Corr(hs, ht)
	}
}

func BenchmarkLISI1000(b *testing.B) {
	corr := Corr(benchEmbeddings(1000, 64, 3), benchEmbeddings(1000, 64, 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LISI(corr, 20)
	}
}

func BenchmarkTrustedPairs1000(b *testing.B) {
	m := LISI(Corr(benchEmbeddings(1000, 64, 5), benchEmbeddings(1000, 64, 6)), 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TrustedPairs(m)
	}
}

func BenchmarkHungarian200(b *testing.B) {
	m := Corr(benchEmbeddings(200, 32, 7), benchEmbeddings(200, 32, 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HungarianMatch(m)
	}
}
