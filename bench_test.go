package htc_test

// The root benchmark harness regenerates every table and figure of the
// paper's evaluation section (see DESIGN.md §4 for the experiment index).
// Each benchmark runs the corresponding experiment driver at a reduced
// scale so a full `go test -bench=. -benchmem` pass stays laptop-sized;
// `cmd/htc-experiments -scale 1` reproduces the full-scale reference run
// recorded in EXPERIMENTS.md. Rendered rows are emitted through b.Logf on
// the first iteration (visible with -v), so the harness prints the same
// rows/series the paper reports.

import (
	"testing"

	"github.com/htc-align/htc/internal/experiments"
)

// benchOptions is the reduced scale used by the benchmark harness.
func benchOptions() experiments.Options {
	return experiments.Options{Scale: 0.15, Seed: 1, Epochs: 12}
}

func BenchmarkTable1Stats(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, text := experiments.Table1(benchOptions())
		if i == 0 {
			b.Logf("\n%s", text)
		}
	}
}

func BenchmarkTable2Overall(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, text, err := experiments.Table2(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", text)
		}
	}
}

func BenchmarkTable3Ablation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, text, err := experiments.Table3(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", text)
		}
	}
}

func BenchmarkFig6OrbitImportance(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, text, err := experiments.Fig6(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", text)
		}
	}
}

func BenchmarkFig7Runtime(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cells, _, err := experiments.Table2(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		text := experiments.Fig7(cells)
		if i == 0 {
			b.Logf("\n%s", text)
		}
	}
}

func BenchmarkFig8Decomposition(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, text, err := experiments.Fig8(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", text)
		}
	}
}

func BenchmarkFig9Robustness(b *testing.B) {
	b.ReportAllocs()
	opts := benchOptions()
	opts.Scale = 0.06 // 70 method runs; keep each dataset tiny
	opts.Epochs = 8
	for i := 0; i < b.N; i++ {
		_, text, err := experiments.Fig9(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", text)
		}
	}
}

func BenchmarkFig9AdditiveRobustness(b *testing.B) {
	b.ReportAllocs()
	opts := benchOptions()
	opts.Scale = 0.06
	opts.Epochs = 8
	for i := 0; i < b.N; i++ {
		_, text, err := experiments.Fig9Additive(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", text)
		}
	}
}

func BenchmarkFig10Hyper(b *testing.B) {
	b.ReportAllocs()
	opts := benchOptions()
	opts.Epochs = 8
	for i := 0; i < b.N; i++ {
		_, text, err := experiments.Fig10(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", text)
		}
	}
}

func BenchmarkFig11TSNE(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, text, err := experiments.Fig11(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", text)
		}
	}
}
