// Command htc-datagen generates the synthetic benchmark datasets described
// in DESIGN.md (stand-ins for the paper's five network pairs) and writes
// them in the library's text format, plus a ground-truth file consumable
// by htc-align.
//
// Usage:
//
//	htc-datagen -dataset allmovie|douban|flickr|econ|bn [-n 0] [-seed 1]
//	            [-remove 0.2] [-out DIR] [-format htc-graph|edgelist|json|adjlist]
//	htc-datagen -stats            # print the Table I statistics
//
// For econ and bn (single networks), -remove controls the edge-removal
// ratio used to derive the target, as in the paper's robustness study.
//
// -format selects the output writer (default htc-graph). The edgelist
// format carries no attributes, so it only suits the attribute-free
// datasets (econ, bn); json and adjlist carry everything. The truth file
// is written as ID-keyed pairs in every case, consumable by htc-align
// -truth whatever the graph format.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	htc "github.com/htc-align/htc"
	"github.com/htc-align/htc/internal/datasets"
	"github.com/htc-align/htc/internal/experiments"
	"github.com/htc-align/htc/internal/ingest"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("htc-datagen: ")

	dataset := flag.String("dataset", "", "dataset: allmovie, douban, flickr, econ, bn")
	n := flag.Int("n", 0, "size override (0 = default scale)")
	seed := flag.Int64("seed", 1, "random seed")
	remove := flag.Float64("remove", 0.2, "edge-removal ratio for econ/bn targets")
	out := flag.String("out", ".", "output directory")
	format := flag.String("format", "htc-graph", "output format: htc-graph, edgelist, json, adjlist")
	stats := flag.Bool("stats", false, "print Table I statistics and exit")
	flag.Parse()

	if *stats {
		_, text := experiments.Table1(experiments.Options{Seed: *seed})
		fmt.Print(text)
		return
	}

	var pair *datasets.Pair
	switch *dataset {
	case "allmovie":
		pair = htc.AllmovieImdb(*n, *seed)
	case "douban":
		pair = htc.Douban(*n, *seed)
	case "flickr":
		pair = htc.FlickrMyspace(*n, *seed)
	case "econ", "bn":
		var src *htc.Graph
		if *dataset == "econ" {
			src = htc.Econ(*n, *seed)
		} else {
			src = htc.BN(*n, *seed)
		}
		target, truth := htc.MakeTarget(src, *remove, *seed+1)
		pair = &datasets.Pair{Name: *dataset, Source: src, Target: target, Truth: truth}
	case "":
		flag.Usage()
		os.Exit(2)
	default:
		log.Fatalf("unknown dataset %q", *dataset)
	}

	ext := map[string]string{"htc-graph": ".graph", "edgelist": ".edges", "json": ".json", "adjlist": ".adj"}[*format]
	if ext == "" {
		log.Fatalf("unknown output format %q (use htc-graph, edgelist, json or adjlist)", *format)
	}
	writeGraph(filepath.Join(*out, *dataset+"_source"+ext), pair.Source, *format)
	writeGraph(filepath.Join(*out, *dataset+"_target"+ext), pair.Target, *format)
	writeTruth(filepath.Join(*out, *dataset+"_truth.txt"), pair.Truth, pair.Source.N(), pair.Target.N())
	fmt.Printf("wrote %s pair (%s): source %v, target %v, %d anchors\n",
		pair.Name, *format, pair.Source, pair.Target, pair.Truth.NumAnchors())
}

func writeGraph(path string, g *htc.Graph, format string) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := htc.WriteGraphAs(f, g, nil, format); err != nil {
		log.Fatalf("%s: %v", path, err)
	}
}

func writeTruth(path string, truth htc.Truth, ns, nt int) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := ingest.WriteTruth(f, truth, ingest.Identity(ns), ingest.Identity(nt)); err != nil {
		log.Fatalf("%s: %v", path, err)
	}
}
