// Command htc-datagen generates the synthetic benchmark datasets described
// in DESIGN.md (stand-ins for the paper's five network pairs) and writes
// them in the library's text format, plus a ground-truth file consumable
// by htc-align.
//
// Usage:
//
//	htc-datagen -dataset allmovie|douban|flickr|econ|bn [-n 0] [-seed 1]
//	            [-remove 0.2] [-out DIR]
//	htc-datagen -stats            # print the Table I statistics
//
// For econ and bn (single networks), -remove controls the edge-removal
// ratio used to derive the target, as in the paper's robustness study.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	htc "github.com/htc-align/htc"
	"github.com/htc-align/htc/internal/datasets"
	"github.com/htc-align/htc/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("htc-datagen: ")

	dataset := flag.String("dataset", "", "dataset: allmovie, douban, flickr, econ, bn")
	n := flag.Int("n", 0, "size override (0 = default scale)")
	seed := flag.Int64("seed", 1, "random seed")
	remove := flag.Float64("remove", 0.2, "edge-removal ratio for econ/bn targets")
	out := flag.String("out", ".", "output directory")
	stats := flag.Bool("stats", false, "print Table I statistics and exit")
	flag.Parse()

	if *stats {
		_, text := experiments.Table1(experiments.Options{Seed: *seed})
		fmt.Print(text)
		return
	}

	var pair *datasets.Pair
	switch *dataset {
	case "allmovie":
		pair = htc.AllmovieImdb(*n, *seed)
	case "douban":
		pair = htc.Douban(*n, *seed)
	case "flickr":
		pair = htc.FlickrMyspace(*n, *seed)
	case "econ", "bn":
		var src *htc.Graph
		if *dataset == "econ" {
			src = htc.Econ(*n, *seed)
		} else {
			src = htc.BN(*n, *seed)
		}
		target, truth := htc.MakeTarget(src, *remove, *seed+1)
		pair = &datasets.Pair{Name: *dataset, Source: src, Target: target, Truth: truth}
	case "":
		flag.Usage()
		os.Exit(2)
	default:
		log.Fatalf("unknown dataset %q", *dataset)
	}

	writeGraph(filepath.Join(*out, *dataset+"_source.graph"), pair.Source)
	writeGraph(filepath.Join(*out, *dataset+"_target.graph"), pair.Target)
	writeTruth(filepath.Join(*out, *dataset+"_truth.txt"), pair.Truth)
	fmt.Printf("wrote %s pair: source %v, target %v, %d anchors\n",
		pair.Name, pair.Source, pair.Target, pair.Truth.NumAnchors())
}

func writeGraph(path string, g *htc.Graph) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := htc.WriteGraph(f, g); err != nil {
		log.Fatalf("%s: %v", path, err)
	}
}

func writeTruth(path string, truth htc.Truth) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	fmt.Fprintln(f, "# source target")
	for s, t := range truth {
		if t >= 0 {
			fmt.Fprintf(f, "%d %d\n", s, t)
		}
	}
}
