// Command htc-orbits counts graphlet orbits for a graph in any
// registered format and prints per-edge or per-node signatures keyed by
// node id — the same role Orca's command-line tool plays in the original
// paper's toolchain.
//
// Usage:
//
//	htc-orbits -graph g.edges [-format auto|htc-graph|edgelist|json|adjlist]
//	           [-mode edge|node|summary]
//
// Modes:
//
//	edge     one line per edge:  u v o0 o1 ... o12
//	node     one line per node:  v o0 o1 ... o14   (graphlet degree vector)
//	summary  orbit totals and density, human readable
//
// For htc-graph inputs the printed ids are the indices themselves, so
// existing tooling sees unchanged output; for the named formats the ids
// are the dataset's own.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	htc "github.com/htc-align/htc"
	"github.com/htc-align/htc/internal/orbit"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("htc-orbits: ")

	graphPath := flag.String("graph", "", "graph file (required)")
	format := flag.String("format", "", "input format: htc-graph, edgelist, json, adjlist (default: sniff by content)")
	mode := flag.String("mode", "summary", "output mode: edge, node, summary")
	flag.Parse()
	if *graphPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	loaded, err := htc.LoadFile(*graphPath, htc.LoadOptions{Format: *format})
	if err != nil {
		log.Fatal(err)
	}
	g, ids := loaded.Graph, loaded.Nodes

	switch *mode {
	case "edge":
		counts := htc.CountEdgeOrbits(g)
		for i, e := range g.Edges() {
			fmt.Printf("%s %s", ids.ID(int(e[0])), ids.ID(int(e[1])))
			for _, c := range counts[i] {
				fmt.Printf(" %d", c)
			}
			fmt.Println()
		}
	case "node":
		counts := htc.CountNodeOrbits(g)
		for v, row := range counts {
			fmt.Print(ids.ID(v))
			for _, c := range row {
				fmt.Printf(" %d", c)
			}
			fmt.Println()
		}
	case "summary":
		edgeCounts := orbit.Count(g)
		totals := edgeCounts.Totals()
		fmt.Printf("graph: %v\n\nedge orbit totals:\n", g)
		for k, total := range totals {
			edgesOn := 0
			for _, row := range edgeCounts.PerEdge {
				if row[k] > 0 {
					edgesOn++
				}
			}
			density := 0.0
			if g.NumEdges() > 0 {
				density = float64(edgesOn) / float64(g.NumEdges())
			}
			fmt.Printf("  orbit %2d %-16s total=%-10d edges-on-orbit=%d (%.1f%%)\n",
				k, orbit.Names[k], total, edgesOn, 100*density)
		}
		fmt.Printf("\nderived graphlet counts: triangles=%d P4=%d stars=%d C4=%d paws=%d diamonds=%d K4=%d\n",
			totals[2]/3, totals[4], totals[5]/3, totals[6]/4, totals[7], totals[11], totals[12]/6)
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
}
