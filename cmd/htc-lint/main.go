// Command htc-lint runs the project's invariant checkers — the
// determinism, worker-budget, config-threading and metrics contracts of
// internal/analysis — over the named packages, in the style of a
// go/analysis multichecker:
//
//	htc-lint ./...
//	htc-lint -list
//
// It exits 0 when every contract holds, 1 with file:line:col findings
// otherwise, and 2 on a loading or internal failure. Deliberate
// exceptions are annotated in the source under review:
//
//	//lint:allow <analyzer> <reason>
//
// The directive covers its own line, or — as a standalone or
// doc-comment line — the first code line after its comment block. The
// reason is mandatory, and a directive naming an unknown analyzer is
// itself a finding, so a typo cannot silently disable a check.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/htc-align/htc/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and their contracts, then exit")
	dir := flag.String("C", ".", "directory to resolve package patterns in (the module root)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: htc-lint [-C dir] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%s\n    %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "htc-lint:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "htc-lint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
