// Command htc-experiments regenerates the tables and figures of the
// paper's evaluation section on the simulated datasets.
//
// Usage:
//
//	htc-experiments -run table1|table2|table3|fig6|fig7|fig8|fig9|fig10|fig11|all
//	                [-scale 1.0] [-seed 1] [-epochs 0] [-progress]
//	                [-sim auto|dense|topk|ann] [-topk K] [-ann-bits B] [-ann-probes P]
//	                [-ann-pool-cap C] [-precision auto|f64|f32]
//	                [-refine-iters N] [-refine-token-k K]
//	htc-experiments -source s.edges -target t.edges [-truth pairs.tsv]
//	                [-format auto|htc-graph|edgelist|json|adjlist] ...
//
// The second form runs the full variant roster on a real dataset loaded
// through the ingestion API instead of the simulated pairs: -source and
// -target accept any registered graph format (sniffed by content unless
// -format names one) and -truth takes ID-keyed anchor pairs.
//
// Scale shrinks the datasets proportionally (useful for quick runs);
// epochs overrides training length (0 = defaults); -progress streams
// per-stage pipeline progress to stderr. -sim/-topk and the -ann-* flags
// select and tune the HTC similarity backend (baselines are unaffected),
// so the top-k and ANN approximations can be measured against the paper
// numbers; -precision selects the fine-tune compute tier the same way
// (f32 requires a candidate backend). -refine-iters appends the RefiNA
// refinement stage to every HTC run and adds a "p@1 raw" (unrefined)
// column to the variant tables, so the refinement lift is measurable per
// variant; -refine-token-k tunes its token budget. Output is
// plain text, one section per artefact; EXPERIMENTS.md records a
// reference run.
//
// The variant and hyperparameter sweeps (table3, fig10, fig11) run on
// the staged Prepare/Align API: each graph pair's orbit counts and
// Laplacians are built once and shared across every configuration.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	htc "github.com/htc-align/htc"
	"github.com/htc-align/htc/internal/datasets"
	"github.com/htc-align/htc/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("htc-experiments: ")

	run := flag.String("run", "all", "artefact to regenerate (table1..3, fig6..11, all)")
	scale := flag.Float64("scale", 1.0, "dataset scale multiplier")
	seed := flag.Int64("seed", 1, "random seed")
	epochs := flag.Int("epochs", 0, "training epochs override (0 = defaults)")
	progress := flag.Bool("progress", false, "stream pipeline stage progress to stderr")
	sim := flag.String("sim", "auto", "HTC similarity backend: auto, dense, topk or ann")
	topk := flag.Int("topk", 0, "top-k candidate count per node (0 = automatic; implies -sim topk when set)")
	annBits := flag.Int("ann-bits", 0, "ANN LSH code width in bits (0 = automatic; implies -sim ann when set)")
	annProbes := flag.Int("ann-probes", 0, "ANN buckets probed per query (0 = automatic; implies -sim ann when set)")
	annPoolCap := flag.Int("ann-pool-cap", 0, "ANN per-query re-rank pool bound (0 = unbounded; implies -sim ann when set)")
	precision := flag.String("precision", "auto", "HTC fine-tune compute tier: auto, f64 or f32")
	refineIters := flag.Int("refine-iters", 0, "RefiNA refinement iterations after every HTC integration (0 = no refinement)")
	refineTokenK := flag.Int("refine-token-k", 0, "refinement token-match budget per row (0 = automatic; needs -refine-iters)")
	sourcePath := flag.String("source", "", "custom run: source graph file (any registered format)")
	targetPath := flag.String("target", "", "custom run: target graph file")
	format := flag.String("format", "", "custom run: input format (default: sniff by content)")
	truthPath := flag.String("truth", "", "custom run: ID-keyed ground-truth pairs file")
	flag.Parse()

	backend, err := htc.ParseSimBackend(*sim)
	if err != nil {
		log.Fatal(err)
	}
	if *topk < 0 {
		log.Fatalf("-topk must be ≥ 1 (got %d); 0 selects the automatic count", *topk)
	}
	if *annBits > 0 || *annProbes > 0 || *annPoolCap > 0 {
		if backend == htc.SimilarityAuto {
			backend = htc.SimilarityANN
		}
	} else if *topk > 0 && backend == htc.SimilarityAuto {
		backend = htc.SimilarityTopK
	}
	prec, err := htc.ParsePrecision(*precision)
	if err != nil {
		log.Fatal(err)
	}
	o := experiments.Options{Scale: *scale, Seed: *seed, Epochs: *epochs, Similarity: backend, CandidateK: *topk, AnnBits: *annBits, AnnProbes: *annProbes, AnnPoolCap: *annPoolCap, Precision: prec, RefineIters: *refineIters, RefineTokenK: *refineTokenK}
	if *progress {
		o.Progress = stageLogger()
	}
	start := time.Now()

	if *sourcePath != "" || *targetPath != "" {
		runCustom(*sourcePath, *targetPath, *format, *truthPath, o)
		fmt.Printf("total experiment time: %v\n", time.Since(start).Round(time.Second))
		return
	}

	var table2Cells []experiments.Cell
	table2 := func() {
		cells, text, err := experiments.Table2(o)
		fail(err)
		table2Cells = cells
		fmt.Println(text)
	}

	steps := map[string]func(){
		"table1": func() { _, text := experiments.Table1(o); fmt.Println(text) },
		"table2": table2,
		"table3": func() { _, text, err := experiments.Table3(o); fail(err); fmt.Println(text) },
		"fig6":   func() { _, text, err := experiments.Fig6(o); fail(err); fmt.Println(text) },
		"fig7": func() {
			if table2Cells == nil {
				table2()
			}
			fmt.Println(experiments.Fig7(table2Cells))
		},
		"fig8": func() { _, text, err := experiments.Fig8(o); fail(err); fmt.Println(text) },
		"fig9": func() { _, text, err := experiments.Fig9(o); fail(err); fmt.Println(text) },
		"fig9add": func() {
			_, text, err := experiments.Fig9Additive(o)
			fail(err)
			fmt.Println(text)
		},
		"fig10": func() { _, text, err := experiments.Fig10(o); fail(err); fmt.Println(text) },
		"fig11": func() { _, text, err := experiments.Fig11(o); fail(err); fmt.Println(text) },
	}

	order := []string{"table1", "table2", "fig7", "table3", "fig6", "fig8", "fig9", "fig10", "fig11"}
	if *run == "all" {
		for _, name := range order {
			steps[name]()
		}
	} else if step, ok := steps[*run]; ok {
		step()
	} else {
		log.Printf("unknown artefact %q", *run)
		flag.Usage()
		os.Exit(2)
	}
	fmt.Printf("total experiment time: %v\n", time.Since(start).Round(time.Second))
}

func fail(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// runCustom loads a real dataset through the ingestion API and sweeps
// the variant roster over it.
func runCustom(sourcePath, targetPath, format, truthPath string, o experiments.Options) {
	if sourcePath == "" || targetPath == "" {
		log.Fatal("custom runs need both -source and -target")
	}
	loaded, err := htc.LoadPair(sourcePath, targetPath, htc.LoadOptions{Format: format})
	fail(err)
	pair := &datasets.Pair{
		Name: "custom", Source: loaded.Source, Target: loaded.Target,
		SourceIDs: loaded.SourceIDs, TargetIDs: loaded.TargetIDs,
	}
	if truthPath != "" {
		truth, err := htc.LoadTruthFile(truthPath, loaded.SourceIDs, loaded.TargetIDs)
		fail(err)
		pair.Truth = truth
	}
	_, text, err := experiments.Custom(pair, o)
	fail(err)
	fmt.Println(text)
}

// stageLogger returns a progress observer that prints one line per stage
// transition (not per epoch/iteration — a full experiment run emits tens
// of thousands of fine-grained events).
func stageLogger() htc.Observer {
	last := ""
	return func(ev htc.Progress) {
		if ev.Stage == last {
			return
		}
		last = ev.Stage
		fmt.Fprintf(os.Stderr, "  [stage] %s (%d/%d)\n", ev.Stage, ev.Done, ev.Total)
	}
}
