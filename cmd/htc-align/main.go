// Command htc-align aligns two attributed networks stored in the
// library's text format and prints the predicted anchor links.
//
// Usage:
//
//	htc-align -source s.graph -target t.graph [-k 13] [-epochs 60]
//	          [-variant HTC|HTC-L|HTC-H|HTC-LT|HTC-DT[,more...]] [-seed 1]
//	          [-truth truth.txt] [-top 1] [-progress]
//
// The optional truth file contains one "source target" pair per line and
// enables precision/MRR evaluation. Graph files are produced by
// htc-datagen or by htc.WriteGraph.
//
// -variant accepts a comma-separated list: the pair is prepared once and
// every variant aligns over the shared artifacts (staged API), printing
// one section per variant. -progress streams per-stage progress (with
// per-epoch ticks) to stderr.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	htc "github.com/htc-align/htc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("htc-align: ")

	sourcePath := flag.String("source", "", "source graph file (required)")
	targetPath := flag.String("target", "", "target graph file (required)")
	k := flag.Int("k", 0, "number of orbits (default 13)")
	epochs := flag.Int("epochs", 0, "training epochs (default 60)")
	variant := flag.String("variant", "HTC", "pipeline variant(s), comma-separated: HTC, HTC-L, HTC-H, HTC-LT, HTC-DT")
	seed := flag.Int64("seed", 1, "random seed")
	truthPath := flag.String("truth", "", "optional ground-truth file for evaluation")
	top := flag.Int("top", 1, "print the top-N candidates per source node")
	progress := flag.Bool("progress", false, "stream pipeline progress to stderr")
	flag.Parse()

	if *sourcePath == "" || *targetPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	gs := mustReadGraph(*sourcePath)
	gt := mustReadGraph(*targetPath)

	var variants []htc.Variant
	for _, name := range strings.Split(*variant, ",") {
		v, err := htc.ParseVariant(name)
		if err != nil {
			log.Fatal(err)
		}
		variants = append(variants, v)
	}

	base := htc.Config{K: *k, Epochs: *epochs, Seed: *seed}
	if *progress {
		base.Progress = progressLogger()
	}
	base.Variant = variants[0]
	prep, err := htc.Prepare(gs, gt, base)
	if err != nil {
		log.Fatal(err)
	}
	pt := prep.PrepareTimings()
	fmt.Printf("# prepared pair %.12s… (orbit=%v laplacian=%v, shared by %d variant(s))\n",
		prep.Hash(), pt.OrbitCounting.Round(time.Millisecond), pt.Laplacians.Round(time.Millisecond), len(variants))

	var truth htc.Truth
	if *truthPath != "" {
		truth = mustReadTruth(*truthPath, gs.N())
	}

	for _, v := range variants {
		cfg := base
		cfg.Variant = v
		res, err := prep.Align(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("# aligned %d source nodes to %d target nodes (%s)\n", gs.N(), gt.N(), v)
		fmt.Printf("# timings: %v\n", res.Timings)

		if *top <= 1 {
			for s, t := range res.Predict() {
				fmt.Printf("%d %d\n", s, t)
			}
		} else {
			for s := 0; s < gs.N(); s++ {
				fmt.Printf("%d", s)
				for _, t := range topQ(res.M.Row(s), *top) {
					fmt.Printf(" %d", t)
				}
				fmt.Println()
			}
		}

		if truth != nil {
			rep := htc.Evaluate(res.M, truth, 1, 10)
			fmt.Printf("# evaluation: %v\n", rep)
		}
	}
}

// progressLogger streams stage transitions and coarse training progress
// to stderr: one line per stage, plus a tick every tenth of the epoch
// budget.
func progressLogger() htc.Observer {
	lastStage := ""
	return func(ev htc.Progress) {
		switch {
		case ev.Stage != lastStage:
			lastStage = ev.Stage
			fmt.Fprintf(os.Stderr, "[%s] started (%d units)\n", ev.Stage, ev.Total)
		case ev.Stage == htc.StageTrain && ev.Total >= 10 && ev.Done%(ev.Total/10) == 0:
			fmt.Fprintf(os.Stderr, "[%s] epoch %d/%d loss=%.4f\n", ev.Stage, ev.Done, ev.Total, ev.Loss)
		}
	}
}

func mustReadGraph(path string) *htc.Graph {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	g, err := htc.ReadGraph(f)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return g
}

func mustReadTruth(path string, n int) htc.Truth {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	truth := make(htc.Truth, n)
	for i := range truth {
		truth[i] = -1
	}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var s, t int
		if _, err := fmt.Sscanf(line, "%d %d", &s, &t); err != nil {
			log.Fatalf("%s: bad line %q", path, line)
		}
		if s < 0 || s >= n {
			log.Fatalf("%s: source %d out of range", path, s)
		}
		truth[s] = t
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	return truth
}

// topQ returns the indices of the q largest entries of row, descending.
func topQ(row []float64, q int) []int {
	if q > len(row) {
		q = len(row)
	}
	idx := make([]int, 0, q)
	used := make(map[int]bool, q)
	for len(idx) < q {
		best, bestV := -1, 0.0
		for j, v := range row {
			if !used[j] && (best < 0 || v > bestV) {
				best, bestV = j, v
			}
		}
		used[best] = true
		idx = append(idx, best)
	}
	return idx
}
