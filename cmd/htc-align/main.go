// Command htc-align aligns two networks stored in any registered graph
// format and prints the predicted anchor links by node id.
//
// Usage:
//
//	htc-align -source s.edges -target t.edges [-format auto|htc-graph|edgelist|json|adjlist]
//	          [-k 13] [-epochs 60]
//	          [-variant HTC|HTC-L|HTC-H|HTC-LT|HTC-DT[,more...]] [-seed 1]
//	          [-truth truth.txt] [-top 1] [-progress]
//	          [-sim auto|dense|topk|ann] [-topk K] [-ann-bits B] [-ann-probes P]
//	          [-ann-pool-cap C] [-precision auto|f64|f32]
//	          [-refine-iters N] [-refine-token-k K]
//	          [-cpuprofile cpu.out] [-memprofile mem.out]
//
// -format selects the input reader; the default sniffs each file by
// content, so SNAP-style edge lists, JSON GraphSpecs, adjacency lists
// and the library's own htc-graph format all work unannounced. Node ids
// are arbitrary strings; predictions are printed as "sourceID targetID".
//
// The optional truth file contains one "sourceID targetID" pair per line
// (the ids of the loaded files — plain indices for htc-graph inputs) and
// enables precision/MRR evaluation.
//
// -variant accepts a comma-separated list: the pair is prepared once and
// every variant aligns over the shared artifacts (staged API), printing
// one section per variant. -progress streams per-stage progress (with
// per-epoch ticks) to stderr.
//
// -sim selects the similarity backend: dense materialises full ns×nt
// score matrices, topk bounds every similarity stage to each node's -topk
// best counterparts (O(n·k) memory — the backend for large graphs), ann
// generates the candidate lists through an LSH index (sub-quadratic
// compute — the backend for huge graphs), auto (the default) picks by
// pair size. -topk sets the per-node candidate count (0 = automatic);
// -ann-bits/-ann-probes tune the LSH index (0 = automatic; setting
// either implies -sim ann, and probes ≥ 2^bits reproduces topk exactly);
// -ann-pool-cap bounds the per-query re-rank pool (0 = unbounded, also
// implies -sim ann). ANN runs print a "# ann:" line with the index's
// skew statistics — bucket balance, re-hashed hot buckets, mean/max
// re-rank pool and the refit reuse ratio across fine-tune iterations.
//
// -precision selects the fine-tune compute tier: f64 (exact), f32 (the
// half-width tier of the candidate backends — roughly halves similarity
// memory traffic) or auto (the default — f32 past the same size
// threshold that selects the ANN backend). Training always runs f64.
//
// -refine-iters runs that many RefiNA refinement iterations over the
// integrated similarity (0, the default, skips the stage); -refine-token-k
// bounds the per-row token-match budget (0 = automatic). Refined runs
// print a "# refine:" line with the MNC trajectory and, with -truth, both
// the refined and the unrefined evaluation.
//
// -cpuprofile and -memprofile write pprof CPU and heap profiles of the
// run; the "# timings:" line additionally breaks down per-stage heap
// allocation so regressions are visible without a profile.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	htc "github.com/htc-align/htc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("htc-align: ")

	sourcePath := flag.String("source", "", "source graph file (required)")
	targetPath := flag.String("target", "", "target graph file (required)")
	format := flag.String("format", "", "input format: htc-graph, edgelist, json, adjlist (default: sniff by content)")
	k := flag.Int("k", 0, "number of orbits (default 13)")
	epochs := flag.Int("epochs", 0, "training epochs (default 60)")
	variant := flag.String("variant", "HTC", "pipeline variant(s), comma-separated: HTC, HTC-L, HTC-H, HTC-LT, HTC-DT")
	seed := flag.Int64("seed", 1, "random seed")
	truthPath := flag.String("truth", "", "optional ground-truth file for evaluation")
	top := flag.Int("top", 1, "print the top-N candidates per source node")
	progress := flag.Bool("progress", false, "stream pipeline progress to stderr")
	sim := flag.String("sim", "auto", "similarity backend: auto, dense, topk or ann")
	topk := flag.Int("topk", 0, "top-k candidate count per node (0 = automatic; implies -sim topk when set)")
	annBits := flag.Int("ann-bits", 0, "ANN LSH code width in bits (0 = automatic; implies -sim ann when set)")
	annProbes := flag.Int("ann-probes", 0, "ANN buckets probed per query (0 = automatic; implies -sim ann when set)")
	annPoolCap := flag.Int("ann-pool-cap", 0, "ANN per-query re-rank pool bound (0 = unbounded; implies -sim ann when set)")
	precision := flag.String("precision", "auto", "fine-tune compute tier: auto, f64 or f32")
	refineIters := flag.Int("refine-iters", 0, "RefiNA refinement iterations after integration (0 = no refinement)")
	refineTokenK := flag.Int("refine-token-k", 0, "token-match budget per row during refinement (0 = automatic; needs -refine-iters)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	flag.Parse()

	if *sourcePath == "" || *targetPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	backend, err := htc.ParseSimBackend(*sim)
	if err != nil {
		log.Fatal(err)
	}
	prec, err := htc.ParsePrecision(*precision)
	if err != nil {
		log.Fatal(err)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}
	if *topk < 0 {
		log.Fatalf("-topk must be ≥ 1 (got %d); 0 selects the automatic count", *topk)
	}
	if *annBits > 0 || *annProbes > 0 || *annPoolCap > 0 {
		if backend == htc.SimilarityAuto {
			backend = htc.SimilarityANN
		}
	} else if *topk > 0 && backend == htc.SimilarityAuto {
		backend = htc.SimilarityTopK
	}
	pair, err := htc.LoadPair(*sourcePath, *targetPath, htc.LoadOptions{Format: *format})
	if err != nil {
		log.Fatal(err)
	}
	gs, gt := pair.Source, pair.Target

	var variants []htc.Variant
	for _, name := range strings.Split(*variant, ",") {
		v, err := htc.ParseVariant(name)
		if err != nil {
			log.Fatal(err)
		}
		variants = append(variants, v)
	}

	base := htc.Config{K: *k, Epochs: *epochs, Seed: *seed, Similarity: backend, CandidateK: *topk, AnnBits: *annBits, AnnProbes: *annProbes, AnnPoolCap: *annPoolCap, Precision: prec, RefineIters: *refineIters, RefineTokenK: *refineTokenK}
	if *progress {
		base.Progress = progressLogger()
	}
	base.Variant = variants[0]
	prep, err := htc.Prepare(gs, gt, base)
	if err != nil {
		log.Fatal(err)
	}
	pt := prep.PrepareTimings()
	fmt.Printf("# prepared pair %.12s… (orbit=%v laplacian=%v, shared by %d variant(s))\n",
		prep.Hash(), pt.OrbitCounting.Round(time.Millisecond), pt.Laplacians.Round(time.Millisecond), len(variants))

	var truth htc.Truth
	if *truthPath != "" {
		truth, err = htc.LoadTruthFile(*truthPath, pair.SourceIDs, pair.TargetIDs)
		if err != nil {
			log.Fatal(err)
		}
	}

	for _, v := range variants {
		cfg := base
		cfg.Variant = v
		res, err := prep.Align(cfg)
		if err != nil {
			log.Fatal(err)
		}
		simNote := "sim=" + res.SimBackend
		if res.CandidateK > 0 {
			simNote = fmt.Sprintf("%s k=%d", simNote, res.CandidateK)
		}
		if res.AnnBits > 0 {
			simNote = fmt.Sprintf("%s bits=%d probes=%d", simNote, res.AnnBits, res.AnnProbes)
		}
		simNote = fmt.Sprintf("%s prec=%s", simNote, res.Precision)
		fmt.Printf("# aligned %d source nodes (%s) to %d target nodes (%s) (%s, %s)\n",
			gs.N(), pair.SourceFormat, gt.N(), pair.TargetFormat, v, simNote)
		fmt.Printf("# timings: %v\n", res.Timings)
		if st := res.Ann; st != nil {
			fmt.Printf("# ann: buckets=%d maxbucket=%d rehashed=%d pool-mean=%.1f pool-max=%d refit-reuse=%.2f\n",
				st.Buckets, st.MaxBucket, st.RehashedBuckets, st.PoolRowsMean, st.PoolRowsMax, st.RefitReuseRatio)
		}
		if res.PreRefineSim != nil {
			fmt.Printf("# refine: iters=%d token-k=%d mnc %.4f -> %.4f\n",
				len(res.RefineMNC)-1, res.RefineTokenK, res.RefineMNC[0], res.RefineMNC[len(res.RefineMNC)-1])
		}

		if *top <= 1 {
			for _, p := range res.PredictNames(pair.SourceIDs, pair.TargetIDs) {
				fmt.Printf("%s %s\n", p[0], p[1])
			}
		} else {
			// The Sim scan visits candidates best-first, so the sparse
			// backend prints its top-N without ever touching a dense row.
			for s := 0; s < gs.N(); s++ {
				fmt.Print(pair.SourceIDs.ID(s))
				printed := 0
				res.Sim.Scan(s, func(t int, _ float64) {
					if printed < *top {
						fmt.Printf(" %s", pair.TargetIDs.ID(t))
						printed++
					}
				})
				fmt.Println()
			}
		}

		if truth != nil {
			rep := htc.EvaluateSim(res.Sim, truth, 1, 10)
			fmt.Printf("# evaluation: %v\n", rep)
			if res.PreRefineSim != nil {
				pre := htc.EvaluateSim(res.PreRefineSim, truth, 1, 10)
				fmt.Printf("# evaluation (unrefined): %v\n", pre)
			}
		}
	}
}

// progressLogger streams stage transitions and coarse training progress
// to stderr: one line per stage, plus a tick every tenth of the epoch
// budget.
func progressLogger() htc.Observer {
	lastStage := ""
	return func(ev htc.Progress) {
		switch {
		case ev.Stage != lastStage:
			lastStage = ev.Stage
			fmt.Fprintf(os.Stderr, "[%s] started (%d units)\n", ev.Stage, ev.Total)
		case ev.Stage == htc.StageTrain && ev.Total >= 10 && ev.Done%(ev.Total/10) == 0:
			fmt.Fprintf(os.Stderr, "[%s] epoch %d/%d loss=%.4f\n", ev.Stage, ev.Done, ev.Total, ev.Loss)
		}
	}
}
