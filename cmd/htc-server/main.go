// Command htc-server runs the HTC alignment service: an HTTP API backed
// by a bounded job queue and worker pool that executes the pipeline of
// internal/core per request and caches results by content hash.
//
// Usage:
//
//	htc-server [-addr :8080] [-workers N] [-queue N] [-cache N]
//	           [-prepared-cache N] [-dataset-cache N] [-max-nodes N] [-quiet]
//	           [-pprof]
//
// Endpoints (see internal/server):
//
//	POST   /v1/align         submit a job; body names a built-in or
//	                         uploaded dataset, or carries two inline
//	                         graphs plus a config
//	POST   /v1/sweep         run a list of configs over one shared prepared
//	                         pair (stages 1–2 paid once for the whole sweep)
//	GET    /v1/jobs/{id}     poll status; queue position while waiting, live
//	                         progress while running, the result once done
//	DELETE /v1/jobs/{id}     cancel a queued or running job
//	PUT    /v1/datasets/{id} upload a real dataset in any registered format
//	                         (edge list, adjacency list, JSON, htc-graph)
//	GET    /v1/datasets      list built-in and uploaded datasets
//	GET    /v1/datasets/{id} uploaded dataset metadata
//	DELETE /v1/datasets/{id} remove an uploaded dataset
//	GET    /v1/healthz       liveness and queue occupancy
//	GET    /v1/metrics       Prometheus text metrics
//
// -pprof additionally mounts the net/http/pprof profiling handlers under
// /debug/pprof/ (off by default: profiles expose internals, so the
// operator opts in explicitly).
//
// Example:
//
//	htc-server -addr :8080 &
//	curl -s localhost:8080/v1/align -d '{"dataset":"synthetic","n":120,"config":{"variant":"HTC-L","epochs":20}}'
//	curl -s localhost:8080/v1/jobs/job-000001-xxxxxxx
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"github.com/htc-align/htc/internal/server"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)
	log.SetPrefix("htc-server: ")

	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", max(1, runtime.NumCPU()-1), "alignment worker pool size")
	queueDepth := flag.Int("queue", 0, "submission backlog capacity (0 = 2×workers)")
	cacheSize := flag.Int("cache", 128, "result cache capacity in entries")
	preparedCache := flag.Int("prepared-cache", 8, "prepared-artifact cache capacity in graph pairs")
	datasetCache := flag.Int("dataset-cache", 16, "uploaded-dataset store capacity in entries")
	maxNodes := flag.Int("max-nodes", 20000, "per-graph node limit at admission (-1 = unlimited)")
	quiet := flag.Bool("quiet", false, "suppress per-job logging")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
	flag.Parse()

	opts := server.Options{
		Workers:           *workers,
		QueueDepth:        *queueDepth,
		CacheSize:         *cacheSize,
		PreparedCacheSize: *preparedCache,
		DatasetCacheSize:  *datasetCache,
		MaxNodes:          *maxNodes,
	}
	if !*quiet {
		opts.Log = log.Default()
	}
	svc := server.New(opts)

	handler := http.Handler(svc)
	if *pprofOn {
		// The service owns its own mux, so the pprof handlers are mounted
		// explicitly rather than through the DefaultServeMux side effect.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", svc)
		handler = mux
		log.Print("profiling enabled at /debug/pprof/")
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("listening on %s (%d workers, queue=%d, cache=%d, max-nodes=%d)",
		*addr, opts.Workers, opts.QueueDepth, opts.CacheSize, opts.MaxNodes)

	select {
	case <-ctx.Done():
		log.Print("shutdown signal received, draining...")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	svc.Close() // cancels outstanding jobs, waits for workers
	m := svc.Metrics()
	log.Printf("served %d jobs (%d completed, %d failed, %d cancelled, %d cache hits, %d prepared reuses, %d dataset uploads)",
		m.JobsSubmitted.Load(), m.JobsCompleted.Load(), m.JobsFailed.Load(),
		m.JobsCancelled.Load(), m.CacheHits.Load(), m.PreparedHits.Load(), m.DatasetUploads.Load())
}
