// Command social aligns the simulated Douban Online/Offline pair — the
// paper's canonical *partial* alignment scenario, where the target network
// covers only ~30% of the source's users and the two networks have
// different sizes. It compares unsupervised HTC against the strongest
// unsupervised baseline (GAlign) and a supervised one (FINAL with 10%
// seeds), reproducing the structure of Table II's middle column.
//
// Run it with:
//
//	go run ./examples/social
package main

import (
	"fmt"
	"log"
	"time"

	htc "github.com/htc-align/htc"
)

func main() {
	pair := htc.Douban(500, 11)
	fmt.Printf("source: %v\ntarget: %v\nanchors: %d\n\n",
		pair.Source, pair.Target, pair.Truth.NumAnchors())

	// The supervised baseline receives 10% of ground truth, the paper's
	// protocol; the unsupervised methods get nothing.
	seeds := htc.SampleSeeds(pair.Truth, 0.10, 12)

	methods := []struct {
		aligner htc.Aligner
		seeds   []htc.Anchor
	}{
		{htc.HTC{Config: htc.Config{K: 8, Hidden: 64, Embed: 32, Epochs: 60, Seed: 13}}, nil},
		{htc.GAlign{Epochs: 60, Seed: 13}, nil},
		{htc.FINAL{}, seeds},
	}

	fmt.Printf("%-8s %8s %8s %8s %10s\n", "method", "p@1", "p@10", "MRR", "time")
	for _, m := range methods {
		start := time.Now()
		matrix, err := m.aligner.Align(pair.Source, pair.Target, m.seeds)
		if err != nil {
			log.Fatalf("%s: %v", m.aligner.Name(), err)
		}
		rep := htc.Evaluate(matrix, pair.Truth, 1, 10)
		fmt.Printf("%-8s %8.4f %8.4f %8.4f %10v\n",
			m.aligner.Name(), rep.PrecisionAt[1], rep.PrecisionAt[10], rep.MRR,
			time.Since(start).Round(time.Millisecond))
	}
}
