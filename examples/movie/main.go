// Command movie aligns the simulated Allmovie–Imdb pair — the dense,
// clique-rich co-actor networks where higher-order structure is most
// informative — and prints the per-orbit importance ranking, reproducing
// the analysis of the paper's Fig. 6a: on dense clustered graphs many
// orbits contribute, and the trivial edge pattern (orbit 0) is NOT the
// most important one.
//
// Run it with:
//
//	go run ./examples/movie
package main

import (
	"fmt"
	"log"
	"sort"

	htc "github.com/htc-align/htc"
)

func main() {
	pair := htc.AllmovieImdb(300, 21)
	fmt.Printf("source: %v\ntarget: %v\n\n", pair.Source, pair.Target)

	res, err := htc.Align(pair.Source, pair.Target, htc.Config{
		Hidden: 64, Embed: 32, Epochs: 60, Seed: 22,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep := htc.EvaluateSim(res.Sim, pair.Truth, 1, 10)
	fmt.Printf("HTC: p@1=%.4f p@10=%.4f MRR=%.4f\n\n",
		rep.PrecisionAt[1], rep.PrecisionAt[10], rep.MRR)

	// Rank orbits by importance, as in Fig. 6.
	outcomes := append([]htc.OrbitOutcome(nil), res.PerOrbit...)
	sort.Slice(outcomes, func(i, j int) bool { return outcomes[i].Gamma > outcomes[j].Gamma })
	fmt.Println("orbit importance ranking (cf. paper Fig. 6a):")
	for rank, o := range outcomes {
		bar := ""
		for i := 0; i < int(o.Gamma*200); i++ {
			bar += "█"
		}
		fmt.Printf("  #%2d orbit %2d %-15s γ=%.4f %s\n",
			rank+1, o.Orbit, htc.OrbitNames[o.Orbit], o.Gamma, bar)
	}
}
