// Command proteins aligns two protein–protein interaction networks — the
// founding application of the network-alignment literature (IsoRank, the
// GRAAL family), cited by the paper's introduction as a motivating domain.
// A duplication–divergence interactome stands in for two species: the
// "other species" is the same network with a fraction of interactions
// rewired by evolution (edge removal) and protein identities hidden.
//
// The comparison pits HTC against the two classic bioinformatics
// approaches it generalises: IsoRank (neighbourhood similarity
// propagation) and GREAT-style graphlet signatures (higher-order but no
// learning). It also demonstrates one-to-one matching — in biology every
// protein has at most one ortholog, so the injective Hungarian assignment
// is the right output, and it is measurably better than row-wise argmax.
//
// Run it with:
//
//	go run ./examples/proteins
package main

import (
	"fmt"
	"log"

	htc "github.com/htc-align/htc"
)

func main() {
	species1 := htc.PPI(400, 51)
	species2, truth := htc.MakeTarget(species1, 0.15, 52)
	fmt.Printf("species 1: %v\nspecies 2: %v (15%% of interactions diverged)\n\n",
		species1, species2)

	res, err := htc.Align(species1, species2, htc.Config{
		K: 8, Hidden: 64, Embed: 32, Epochs: 60, Patience: 10, Seed: 53,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %8s %8s %8s\n", "method", "p@1", "p@10", "MRR")
	rep := htc.EvaluateSim(res.Sim, truth, 1, 10)
	fmt.Printf("%-22s %8.4f %8.4f %8.4f\n", "HTC (argmax)", rep.PrecisionAt[1], rep.PrecisionAt[10], rep.MRR)

	// One-to-one orthology: Hungarian assignment on the same scores.
	match := res.MatchOneToOne()
	correct := 0
	for s, t := range match {
		if t >= 0 && truth[s] == t {
			correct++
		}
	}
	fmt.Printf("%-22s %8.4f        -        -\n", "HTC (one-to-one)",
		float64(correct)/float64(truth.NumAnchors()))

	for _, baseline := range []htc.Aligner{
		htc.GREAT{},
		htc.IsoRank{},
	} {
		m, err := baseline.Align(species1, species2, nil)
		if err != nil {
			log.Fatal(err)
		}
		r := htc.Evaluate(m, truth, 1, 10)
		fmt.Printf("%-22s %8.4f %8.4f %8.4f\n", baseline.Name(), r.PrecisionAt[1], r.PrecisionAt[10], r.MRR)
	}
}
