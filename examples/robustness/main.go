// Command robustness runs a miniature of the paper's Fig. 9 robustness
// study: edges are removed from the Econ network at increasing ratios and
// alignment accuracy is tracked for HTC and two of its ablations, plus a
// refined HTC run (RefineIters > 0 appends the RefiNA stage) whose lift
// should grow as noise increases. The multi-orbit-aware training of HTC
// is expected to degrade more gracefully than the orbit-0-only variant.
//
// Each (source, target) pair is prepared once and all three variants run
// over the shared artifacts via the staged API: HTC and HTC-H reuse the
// same orbit counts and Laplacians, so the sweep pays the expensive
// stages once per ratio rather than once per variant.
//
// Run it with:
//
//	go run ./examples/robustness
package main

import (
	"fmt"
	"log"

	htc "github.com/htc-align/htc"
)

func main() {
	src := htc.Econ(400, 31)
	fmt.Printf("source: %v\n\n", src)
	fmt.Printf("%-8s %10s %10s %10s %10s\n", "removal", "HTC p@1", "HTC+R p@1", "HTC-H p@1", "HTC-L p@1")

	base := htc.Config{K: 8, Hidden: 64, Embed: 32, Epochs: 50, Seed: 33}
	variants := []htc.Variant{htc.VariantFull, htc.VariantHighOrder, htc.VariantLowOrder}

	for _, ratio := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
		target, truth := htc.MakeTarget(src, ratio, 32)
		prep, err := htc.Prepare(src, target, base)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%-8.1f", ratio)
		for i, v := range variants {
			cfg := base
			cfg.Variant = v
			res, err := prep.Align(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %10.4f", htc.EvaluateSim(res.Sim, truth, 1).PrecisionAt[1])
			if i == 0 {
				// The refined run shares every stage up to integration with
				// the plain one (same config otherwise), so only the RefiNA
				// iterations are extra work.
				cfg.RefineIters = 5
				refined, err := prep.Align(cfg)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf(" %10.4f", htc.EvaluateSim(refined.Sim, truth, 1).PrecisionAt[1])
			}
		}
		fmt.Println()
	}
}
