// Command robustness runs a miniature of the paper's Fig. 9 robustness
// study: edges are removed from the Econ network at increasing ratios and
// alignment accuracy is tracked for HTC and its low-order ablation. The
// multi-orbit-aware training of HTC is expected to degrade more gracefully
// than the orbit-0-only variant.
//
// Run it with:
//
//	go run ./examples/robustness
package main

import (
	"fmt"
	"log"

	htc "github.com/htc-align/htc"
)

func main() {
	src := htc.Econ(400, 31)
	fmt.Printf("source: %v\n\n", src)
	fmt.Printf("%-8s %10s %10s\n", "removal", "HTC p@1", "HTC-L p@1")

	for _, ratio := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
		target, truth := htc.MakeTarget(src, ratio, 32)

		full, err := htc.Align(src, target, htc.Config{
			K: 8, Hidden: 64, Embed: 32, Epochs: 50, Seed: 33,
		})
		if err != nil {
			log.Fatal(err)
		}
		low, err := htc.Align(src, target, htc.Config{
			Variant: htc.VariantLowOrder, Hidden: 64, Embed: 32, Epochs: 50, Seed: 33,
		})
		if err != nil {
			log.Fatal(err)
		}

		pFull := htc.Evaluate(full.M, truth, 1).PrecisionAt[1]
		pLow := htc.Evaluate(low.M, truth, 1).PrecisionAt[1]
		fmt.Printf("%-8.1f %10.4f %10.4f\n", ratio, pFull, pLow)
	}
}
