// Command quickstart demonstrates the minimal HTC workflow: build two
// small attributed graphs, align them unsupervised, and inspect the
// predicted anchor links.
//
// Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	htc "github.com/htc-align/htc"
)

func main() {
	// A small social network: two triangles bridged by an edge, plus a
	// tail. Node attributes are 2-dimensional profile vectors.
	const n = 8
	b := htc.NewBuilder(n)
	edges := [][2]int{
		{0, 1}, {1, 2}, {0, 2}, // triangle A
		{3, 4}, {4, 5}, {3, 5}, // triangle B
		{2, 3},         // bridge
		{5, 6}, {6, 7}, // tail
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	attrs := htc.NewMatrix(n, 2)
	for i := 0; i < n; i++ {
		attrs.Set(i, 0, float64(i%3))
		attrs.Set(i, 1, float64(i%2))
	}
	gs := b.Build().WithAttrs(attrs)

	// The target network is the same graph with hidden node identities —
	// the alignment task is to rediscover the permutation.
	perm := htc.Permutation(n, 7)
	gt := htc.Relabel(gs, perm)

	res, err := htc.Align(gs, gt, htc.Config{
		K:      8,  // orbits 0..7
		Hidden: 16, // small widths: this is an 8-node toy
		Embed:  8,
		Epochs: 50,
		M:      3,
		Seed:   1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("predicted anchors (source → target, ✓ = matches hidden permutation):")
	correct := 0
	for s, t := range res.Predict() {
		mark := " "
		if t == perm[s] {
			mark = "✓"
			correct++
		}
		fmt.Printf("  %d → %d %s\n", s, t, mark)
	}
	fmt.Printf("%d/%d correct\n\n", correct, n)

	fmt.Println("orbit importance (γ of Eq. 15):")
	for _, o := range res.PerOrbit {
		fmt.Printf("  orbit %2d (%-9s): γ=%.3f trusted=%d\n",
			o.Orbit, htc.OrbitNames[o.Orbit], o.Gamma, o.Trusted)
	}
	fmt.Printf("\nstage timings: %v\n", res.Timings)
}
