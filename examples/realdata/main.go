// Command realdata demonstrates the real-dataset ingestion API: it
// writes a SNAP-style edge-list pair with ID-keyed ground truth to a
// temp directory (standing in for files you downloaded), loads it back
// through the format-sniffing loader, aligns, and reads the predictions
// by node name.
//
// Run it with:
//
//	go run ./examples/realdata
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	htc "github.com/htc-align/htc"
)

func main() {
	dir, err := os.MkdirTemp("", "htc-realdata")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// In real use these files come from SNAP, Kaggle or your own crawl:
	// one "u v" edge per line, node ids are arbitrary strings, '#'
	// starts a comment. The truth file pairs source ids with target ids.
	files := map[string]string{
		"online.edges":  "ada bob\nada cyd\nbob cyd\ncyd dee\ndee eve\neve fay\nfay gus\ngus hal\nhal ida\nida jon\ndee gus\nbob eve\n",
		"offline.edges": "u2 u1\nu1 u3\nu2 u3\nu3 u4\nu4 u5\nu5 u6\nu6 u7\nu7 u8\nu8 u9\nu9 u10\nu4 u7\nu2 u5\n",
		"anchors.tsv":   "ada u1\nbob u2\ncyd u3\ndee u4\neve u5\nfay u6\ngus u7\nhal u8\nida u9\njon u10\n",
	}
	for name, data := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(data), 0o644); err != nil {
			log.Fatal(err)
		}
	}

	// Load both networks; the format is sniffed per file, so mixing an
	// edge list with a JSON GraphSpec or an adjacency list also works.
	pair, err := htc.LoadPair(filepath.Join(dir, "online.edges"), filepath.Join(dir, "offline.edges"), htc.LoadOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded source (%s): %v\nloaded target (%s): %v\n",
		pair.SourceFormat, pair.Source, pair.TargetFormat, pair.Target)

	// Ground truth arrives keyed by the files' own ids and is resolved
	// through the NodeMaps the loader returned.
	truth, err := htc.LoadTruthFile(filepath.Join(dir, "anchors.tsv"), pair.SourceIDs, pair.TargetIDs)
	if err != nil {
		log.Fatal(err)
	}

	res, err := htc.Align(pair.Source, pair.Target, htc.Config{Epochs: 30, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\npredicted anchors (by name):")
	for _, p := range res.PredictNames(pair.SourceIDs, pair.TargetIDs) {
		fmt.Printf("  %-4s -> %s\n", p[0], p[1])
	}
	rep := htc.EvaluateSim(res.Sim, truth, 1, 10)
	fmt.Printf("\nevaluation against %d ID-keyed anchors: %v\n", rep.Anchors, rep)
}
