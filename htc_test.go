package htc_test

import (
	"bytes"
	"math/rand"
	"testing"

	htc "github.com/htc-align/htc"
)

// smallPair builds a quick aligned pair through the public API only.
func smallPair(t *testing.T) (*htc.Graph, *htc.Graph, htc.Truth) {
	t.Helper()
	g := htc.Econ(120, 1)
	gt, truth := htc.MakeTarget(g, 0.1, 2)
	return g, gt, truth
}

func TestPublicAlignEndToEnd(t *testing.T) {
	gs, gt, truth := smallPair(t)
	res, err := htc.Align(gs, gt, htc.Config{K: 4, Hidden: 16, Embed: 8, Epochs: 30, M: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rep := htc.Evaluate(res.M, truth, 1, 10)
	t.Logf("public API: %v", rep)
	if rep.PrecisionAt[1] < 0.3 {
		t.Fatalf("p@1 = %v, want ≥ 0.3 on light noise", rep.PrecisionAt[1])
	}
	if len(res.Predict()) != gs.N() {
		t.Fatal("Predict length mismatch")
	}
}

func TestHTCImplementsAligner(t *testing.T) {
	var aligners []htc.Aligner = []htc.Aligner{
		htc.HTC{Config: htc.Config{K: 2, Hidden: 8, Embed: 4, Epochs: 10, M: 4}},
		htc.IsoRank{Iters: 5},
		htc.FINAL{Iters: 5},
		htc.REGAL{},
		htc.PALE{Epochs: 5},
		htc.CENALP{Epochs: 5, Rounds: 1},
		htc.GAlign{Epochs: 5},
	}
	gs, gt, truth := smallPair(t)
	seeds := htc.SampleSeeds(truth, 0.1, 4)
	for _, a := range aligners {
		m, err := a.Align(gs, gt, seeds)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if m.Rows != gs.N() || m.Cols != gt.N() {
			t.Fatalf("%s: bad shape", a.Name())
		}
	}
}

func TestHTCAlignerName(t *testing.T) {
	if (htc.HTC{}).Name() != "HTC" {
		t.Fatalf("Name = %q", htc.HTC{}.Name())
	}
	if (htc.HTC{Config: htc.Config{Variant: htc.VariantLowOrder}}).Name() != "HTC-L" {
		t.Fatal("variant name not propagated")
	}
}

func TestGraphBuildAndIO(t *testing.T) {
	b := htc.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	var buf bytes.Buffer
	if err := htc.WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := htc.ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != 2 {
		t.Fatalf("edges = %d", got.NumEdges())
	}
}

func TestCountEdgeOrbitsPublic(t *testing.T) {
	b := htc.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	g := b.Build()
	counts := htc.CountEdgeOrbits(g)
	if len(counts) != 3 {
		t.Fatalf("rows = %d", len(counts))
	}
	for _, row := range counts {
		if row[0] != 1 || row[2] != 1 { // every edge is in the triangle
			t.Fatalf("row = %v", row)
		}
	}
	if htc.OrbitNames[2] != "triangle" {
		t.Fatalf("OrbitNames[2] = %q", htc.OrbitNames[2])
	}
	nodeCounts := htc.CountNodeOrbits(g)
	if len(nodeCounts) != 3 {
		t.Fatalf("node rows = %d", len(nodeCounts))
	}
	for v, row := range nodeCounts {
		if row[0] != 2 || row[3] != 1 { // each triangle node: degree 2, one triangle
			t.Fatalf("node %d GDV = %v", v, row)
		}
	}
	if htc.NodeOrbitNames[7] != "star-center" || htc.NumNodeOrbits != 15 {
		t.Fatal("node orbit metadata wrong")
	}
}

func TestDatasetReExports(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	_ = rng
	p := htc.Douban(150, 6)
	if p.Source.N() != 150 {
		t.Fatalf("Douban source n = %d", p.Source.N())
	}
	if htc.NumOrbits != 13 {
		t.Fatalf("NumOrbits = %d", htc.NumOrbits)
	}
}
