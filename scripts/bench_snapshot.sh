#!/usr/bin/env sh
# Refresh a perf baseline: run a package's benchmarks once each and record
# them as JSON so future PRs have a trajectory to compare against.
#
# Usage: scripts/bench_snapshot.sh [out.json] [package] [bench-regex]
#
#   scripts/bench_snapshot.sh                        # server baseline
#   scripts/bench_snapshot.sh BENCH_pipeline.json ./internal/core/ 'BenchmarkAlign$'
#
# The snapshot records the host's CPU count: the workers=1 vs workers=max
# series of the pipeline benchmarks only diverge on multi-core hosts.
set -eu

out=${1:-BENCH_server.json}
pkg=${2:-./internal/server/}
regex=${3:-.}

cpus=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)

# Run the benchmarks to a file first: in a `go test | awk` pipeline a
# test failure would be masked by awk's exit status and produce an empty
# (vacuously passing) snapshot.
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
go test -bench "$regex" -benchtime=1x -run='^$' "$pkg" > "$raw"

awk \
	-v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
	-v goversion="$(go env GOVERSION)" \
	-v goos="$(go env GOOS)" -v goarch="$(go env GOARCH)" \
	-v pkg="$pkg" -v cpus="$cpus" '
BEGIN {
	print "{"
	printf "  \"generated_at\": \"%s\",\n", date
	printf "  \"go\": \"%s\", \"goos\": \"%s\", \"goarch\": \"%s\", \"cpus\": %s,\n", goversion, goos, goarch, cpus
	printf "  \"package\": \"%s\",\n", pkg
	print  "  \"benchtime\": \"1x\","
	print  "  \"benchmarks\": ["
	n = 0
}
/^Benchmark/ {
	# Strip the -GOMAXPROCS suffix Go appends on multi-core hosts
	# (benchstat does the same), so names compare across machines.
	name = $1
	sub(/-[0-9]+$/, "", name)
	if (n++) printf ",\n"
	printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, $2, $3
	# Benchmarks that ReportAllocs also print "X B/op  Y allocs/op";
	# record both so the gate can catch allocated-bytes regressions (a
	# reintroduced dense path shows up in memory before it shows up in
	# time).
	for (i = 4; i < NF; i++) {
		if ($(i+1) == "B/op")      printf ", \"bytes_per_op\": %s", $i
		if ($(i+1) == "allocs/op") printf ", \"allocs_per_op\": %s", $i
		# Custom ReportMetric series of the ANN benchmarks: mean re-rank
		# pool rows per query (the bucket-skew signal the gate watches)
		# and the incremental-refit reuse ratio (recorded for trend
		# reading; near-zero reuse is legitimate on fast-moving
		# embeddings, so it is not gated).
		if ($(i+1) == "pool-rows/op")   printf ", \"pool_rows_per_op\": %s", $i
		if ($(i+1) == "refit-reuse/op") printf ", \"refit_reuse_per_op\": %s", $i
		# Fine-tune stage allocated bytes (from the per-stage pipeline
		# decomposition): the span the float32 precision tier owns,
		# recorded per tier so the trajectory localises memory changes.
		if ($(i+1) == "finetune-bytes/op") printf ", \"finetune_bytes_per_op\": %s", $i
	}
	printf "}"
}
END {
	print "\n  ]"
	print "}"
}' "$raw" > "$out"

cat "$out"
