#!/usr/bin/env sh
# Refresh the serving-layer perf baseline: run the internal/server
# benchmarks once each and record them as JSON so future PRs have a
# trajectory to compare against. Usage: scripts/bench_snapshot.sh [out.json]
set -eu

out=${1:-BENCH_server.json}

go test -bench=. -benchtime=1x -run='^$' ./internal/server/ | awk \
	-v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
	-v goversion="$(go env GOVERSION)" \
	-v goos="$(go env GOOS)" -v goarch="$(go env GOARCH)" '
BEGIN {
	print "{"
	printf "  \"generated_at\": \"%s\",\n", date
	printf "  \"go\": \"%s\", \"goos\": \"%s\", \"goarch\": \"%s\",\n", goversion, goos, goarch
	print  "  \"package\": \"internal/server\","
	print  "  \"benchtime\": \"1x\","
	print  "  \"benchmarks\": ["
	n = 0
}
/^Benchmark/ {
	if (n++) printf ",\n"
	printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s}", $1, $2, $3
}
END {
	print "\n  ]"
	print "}"
}' > "$out"

cat "$out"
