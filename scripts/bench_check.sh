#!/usr/bin/env sh
# Compare a fresh benchmark snapshot against a checked-in baseline and fail
# when any shared benchmark regressed beyond the allowed factor — in time
# (ns/op), in allocated memory (B/op), or in allocation count (allocs/op).
#
# Usage: scripts/bench_check.sh baseline.json fresh.json [max-factor] [max-bytes-factor] [max-allocs-factor] [max-pool-factor]
#
# Benchmarks are matched by name; entries present in only one file are
# ignored (new benchmarks don't fail the gate), and the bytes/allocs gates
# only fire when both snapshots recorded the series. The default time
# factor of 2 is deliberately loose: snapshots are single-iteration smoke
# timings, and the gate exists to catch order-of-magnitude mistakes (an
# accidentally serial kernel, a reintroduced dense path), not
# percent-level noise. Allocated bytes and allocation counts are
# deterministic-ish, so their default factor is tighter (1.5) — a dense
# ns×nt matrix sneaking back into the top-k path multiplies B/op far
# beyond that, and a per-row (instead of per-block) scratch allocation
# multiplies allocs/op the same way. The pool-rows series (mean candidate
# rows the ANN backend re-ranks per query, recorded by the skew-adversarial
# and 100K ingestion benchmarks) is gated at the same tightness: it is
# fully deterministic for a fixed seed, and a balanced hash silently
# degrading to skewed buckets multiplies it well beyond 1.5 long before
# wall-clock noise would catch the regression. Two extra gates compare
# series within the fresh snapshot itself: the f32 tier of the 100K
# ingestion benchmark must allocate ≤ 0.97× of its f64 twin in the
# fine-tune stage (the span the precision tier owns) and never more
# than it overall.
set -eu

baseline=$1
fresh=$2
factor=${3:-2.0}
bytes_factor=${4:-1.5}
allocs_factor=${5:-1.5}
pool_factor=${6:-1.5}

# Extract "name ns_per_op bytes_per_op allocs_per_op" tuples from the
# snapshot JSON (one benchmark per line, as produced by bench_snapshot.sh;
# a missing series becomes "-"). The -GOMAXPROCS suffix Go appends on
# multi-core hosts is stripped again here, so snapshots taken before that
# normalisation (or hand-edited) still match by name.
extract() {
	tr ',' '\n' < "$1" | awk '
		/"name"/ {
			if (name != "") print name, ns, bytes, allocs, pool, ft
			gsub(/.*"name": "|"/, ""); sub(/-[0-9]+$/, "")
			name = $0; ns = "-"; bytes = "-"; allocs = "-"; pool = "-"; ft = "-"
		}
		/"ns_per_op"/       { gsub(/.*"ns_per_op": |}.*/, "");       ns = $0 }
		/"bytes_per_op"/    { gsub(/.*"bytes_per_op": |}.*/, "");    bytes = $0 }
		/"allocs_per_op"/   { gsub(/.*"allocs_per_op": |}.*/, "");   allocs = $0 }
		/"pool_rows_per_op"/ { gsub(/.*"pool_rows_per_op": |}.*/, ""); pool = $0 }
		/"finetune_bytes_per_op"/ { gsub(/.*"finetune_bytes_per_op": |}.*/, ""); ft = $0 }
		END { if (name != "") print name, ns, bytes, allocs, pool, ft }'
}

extract "$baseline" | sort > /tmp/bench_base.$$
extract "$fresh" | sort > /tmp/bench_fresh.$$

fail=0
compared=0
while read -r name base basebytes baseallocs basepool baseft; do
	line=$(awk -v n="$name" '$1 == n { print $2, $3, $4, $5 }' /tmp/bench_fresh.$$)
	[ -z "$line" ] && continue
	set -- $line
	new=$1
	newbytes=$2
	newallocs=$3
	newpool=$4
	compared=$((compared + 1))
	worse=$(awk -v b="$base" -v n="$new" -v f="$factor" 'BEGIN { print (n > b * f) ? 1 : 0 }')
	if [ "$worse" = 1 ]; then
		echo "REGRESSION: $name ${base}ns -> ${new}ns (allowed factor $factor)" >&2
		fail=1
	else
		echo "ok: $name ${base}ns -> ${new}ns"
	fi
	# Allocated-bytes gate: only when both snapshots carry the series.
	if [ "$basebytes" != "-" ] && [ "$newbytes" != "-" ]; then
		worse=$(awk -v b="$basebytes" -v n="$newbytes" -v f="$bytes_factor" 'BEGIN { print (n > b * f) ? 1 : 0 }')
		if [ "$worse" = 1 ]; then
			echo "REGRESSION: $name ${basebytes}B/op -> ${newbytes}B/op (allowed factor $bytes_factor)" >&2
			fail=1
		else
			echo "ok: $name ${basebytes}B/op -> ${newbytes}B/op"
		fi
	fi
	# Allocation-count gate, same contract as the bytes gate.
	if [ "$baseallocs" != "-" ] && [ "$newallocs" != "-" ]; then
		worse=$(awk -v b="$baseallocs" -v n="$newallocs" -v f="$allocs_factor" 'BEGIN { print (n > b * f) ? 1 : 0 }')
		if [ "$worse" = 1 ]; then
			echo "REGRESSION: $name ${baseallocs}allocs/op -> ${newallocs}allocs/op (allowed factor $allocs_factor)" >&2
			fail=1
		else
			echo "ok: $name ${baseallocs}allocs/op -> ${newallocs}allocs/op"
		fi
	fi
	# Pool-rows gate: the ANN skew signal, same contract as the bytes gate.
	if [ "$basepool" != "-" ] && [ "$newpool" != "-" ]; then
		worse=$(awk -v b="$basepool" -v n="$newpool" -v f="$pool_factor" 'BEGIN { print (n > b * f) ? 1 : 0 }')
		if [ "$worse" = 1 ]; then
			echo "REGRESSION: $name ${basepool}pool-rows/op -> ${newpool}pool-rows/op (allowed factor $pool_factor)" >&2
			fail=1
		else
			echo "ok: $name ${basepool}pool-rows/op -> ${newpool}pool-rows/op"
		fi
	fi
done < /tmp/bench_base.$$

# Precision-tier gates: the float32 tier of the 100K ingestion benchmark
# must deliver its memory win against the f64 series of the SAME fresh
# snapshot (host and toolchain drift cancel out in a same-snapshot
# ratio); they fire only when the snapshot carries both tiers (baselines
# predating the split lack them). Wall-clock is NOT gated across tiers —
# at this workload's embedding width the f32 kernels trade halved
# streaming bandwidth against widening conversions and the measured
# ratio swings either way with host load. The allocation series are
# deterministic, so they are: the fine-tune stage (the span the
# precision tier owns, measured by the pipeline's per-stage TotalAlloc
# deltas) must allocate ≤ 0.97× of the f64 series — the half-width
# embedding copies are a real, fixed saving under the
# precision-independent candidate-list bulk — and the whole-benchmark
# bytes may never exceed f64 at all: a widening copy sneaking into the
# f32 path shows up there first.
f64line=$(awk '$1 == "BenchmarkAlignAnnIngested100K/f64" { print $3, $6 }' /tmp/bench_fresh.$$)
f32line=$(awk '$1 == "BenchmarkAlignAnnIngested100K/f32" { print $3, $6 }' /tmp/bench_fresh.$$)
if [ -n "$f64line" ] && [ -n "$f32line" ]; then
	set -- $f64line
	f64bytes=$1
	f64ft=$2
	set -- $f32line
	f32bytes=$1
	f32ft=$2
	if [ "$f64ft" != "-" ] && [ "$f32ft" != "-" ]; then
		worse=$(awk -v b="$f64ft" -v n="$f32ft" 'BEGIN { print (n > b * 0.97) ? 1 : 0 }')
		if [ "$worse" = 1 ]; then
			echo "REGRESSION: AlignAnnIngested100K/f32 fine-tune ${f32ft}B not <= 0.97x the f64 series (${f64ft}B)" >&2
			fail=1
		else
			echo "ok: AlignAnnIngested100K/f32 fine-tune ${f32ft}B <= 0.97x f64 (${f64ft}B)"
		fi
	fi
	if [ "$f64bytes" != "-" ] && [ "$f32bytes" != "-" ]; then
		worse=$(awk -v b="$f64bytes" -v n="$f32bytes" 'BEGIN { print (n > b) ? 1 : 0 }')
		if [ "$worse" = 1 ]; then
			echo "REGRESSION: AlignAnnIngested100K/f32 ${f32bytes}B/op exceeds the f64 series (${f64bytes}B/op)" >&2
			fail=1
		else
			echo "ok: AlignAnnIngested100K/f32 ${f32bytes}B/op <= f64 (${f64bytes}B/op)"
		fi
	fi
fi

rm -f /tmp/bench_base.$$ /tmp/bench_fresh.$$

# A gate that compared nothing protects nothing — treat it as a failure
# (renamed benchmarks must update the checked-in baseline alongside).
if [ "$compared" = 0 ]; then
	echo "ERROR: no benchmarks in common between $baseline and $fresh" >&2
	fail=1
fi
exit $fail
