# Local targets mirror .github/workflows/ci.yml exactly: `make ci` runs
# what CI runs.

GO ?= go

.PHONY: build test lint bench bench-snapshot ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "these files need gofmt:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

# One iteration of every benchmark — a smoke run proving the bench
# harness works, not a measurement.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Refresh the serving-layer perf baseline compared across PRs.
bench-snapshot:
	./scripts/bench_snapshot.sh BENCH_server.json

# Refresh the end-to-end pipeline baseline (BenchmarkAlign per variant,
# workers=1 vs workers=max, the staged-API prepare-reuse sweep, and the
# large-pair top-k memory benchmark).
bench-pipeline:
	./scripts/bench_snapshot.sh BENCH_pipeline.json ./internal/core/ 'BenchmarkAlign$$|BenchmarkPrepareReuse$$|BenchmarkAlignTopKLarge$$'

# The CI regression gate: re-measure and compare against the checked-in
# pipeline baseline, failing on a >2x time or >1.5x allocated-bytes
# regression.
bench-gate:
	./scripts/bench_snapshot.sh BENCH_pipeline.ci.json ./internal/core/ 'BenchmarkAlign$$|BenchmarkPrepareReuse$$|BenchmarkAlignTopKLarge$$'
	./scripts/bench_check.sh BENCH_pipeline.json BENCH_pipeline.ci.json 2.0 1.5

ci: lint build test bench bench-gate
