# Local targets mirror .github/workflows/ci.yml exactly: `make ci` runs
# what CI runs.

GO ?= go

# How long `make fuzz` spends on each format-reader fuzz target.
FUZZTIME ?= 10s
FUZZ_TARGETS = FuzzEdgeList FuzzAdjList FuzzJSON FuzzHTCGraph FuzzSniff FuzzTruth

.PHONY: build test test-ann test-refine lint bench bench-snapshot bench-io bench-gate fuzz ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# The ANN index is the one subsystem with lock-free per-worker counters
# merged across goroutines; run its suite explicitly under the race
# detector (also covered by `test`, but kept addressable on its own so
# index changes get a fast, targeted gate).
test-ann:
	$(GO) test -race -count=1 ./internal/ann/...

# The RefiNA refinement stage shares per-worker scratch across
# goroutines and must stay worker-count independent; run its suite
# explicitly under the race detector, uncached, so refinement changes
# get the same targeted gate the ANN index has.
test-refine:
	$(GO) test -race -count=1 ./internal/refine/...

# Static analysis at full strength: gofmt, the whole stock vet suite
# plus an explicit, addressable copylocks pass, a tidy-module check, and
# htc-lint — the project-specific analyzers under internal/analysis
# (paramflow, detrange, knobcover, metricdiscipline). x/tools' shadow
# and nilness vet passes cannot be fetched in the offline build, so
# htc-lint ships native implementations of both; `go tool vet help`
# lists neither because they were never in the stock distribution.
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "these files need gofmt:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) vet -copylocks ./...
	$(GO) mod tidy -diff
	$(GO) run ./cmd/htc-lint ./...

# One iteration of every benchmark — a smoke run proving the bench
# harness works, not a measurement.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Refresh the serving-layer perf baseline compared across PRs.
bench-snapshot:
	./scripts/bench_snapshot.sh BENCH_server.json

# Refresh the end-to-end pipeline baseline (BenchmarkAlign per variant,
# workers=1 vs workers=max, the staged-API prepare-reuse sweep, the
# large-pair top-k memory benchmark, the 100k-node ingested-graph ANN
# scale proof, the skew-adversarial ANN pool benchmark, and the RefiNA
# refinement stage — dense 1k and candidate-list 100k series).
bench-pipeline:
	./scripts/bench_snapshot.sh BENCH_pipeline.json ./internal/core/ 'BenchmarkAlign$$|BenchmarkPrepareReuse$$|BenchmarkAlignTopKLarge$$|BenchmarkAlignAnnIngested100K$$|BenchmarkAnnSkewAdversarial$$|BenchmarkRefine$$'

# Refresh the ingestion baseline: the 1M-edge edge-list parse and the
# 100k-anchor ID-keyed truth resolution.
bench-io:
	./scripts/bench_snapshot.sh BENCH_io.json ./internal/ingest/ 'BenchmarkEdgeList1M$$|BenchmarkTruth100K$$'

# The CI regression gate: re-measure and compare against the checked-in
# pipeline and ingestion baselines, failing on a >2x time, >1.5x
# allocated-bytes, >1.5x allocation-count or >1.5x ANN pool-rows
# regression.
bench-gate:
	./scripts/bench_snapshot.sh BENCH_pipeline.ci.json ./internal/core/ 'BenchmarkAlign$$|BenchmarkPrepareReuse$$|BenchmarkAlignTopKLarge$$|BenchmarkAlignAnnIngested100K$$|BenchmarkAnnSkewAdversarial$$|BenchmarkRefine$$'
	./scripts/bench_check.sh BENCH_pipeline.json BENCH_pipeline.ci.json 2.0 1.5
	./scripts/bench_snapshot.sh BENCH_io.ci.json ./internal/ingest/ 'BenchmarkEdgeList1M$$|BenchmarkTruth100K$$'
	./scripts/bench_check.sh BENCH_io.json BENCH_io.ci.json 2.0 1.5

# Short fuzz smoke over every registered format reader plus the sniffer
# and the truth parser (go test -fuzz accepts one target at a time).
fuzz:
	@for t in $(FUZZ_TARGETS); do \
		echo "== fuzz $$t ($(FUZZTIME)) =="; \
		$(GO) test ./internal/ingest/ -run='^$$' -fuzz="^$$t$$" -fuzztime=$(FUZZTIME) || exit 1; \
	done

ci: lint build test test-ann test-refine fuzz bench bench-gate
