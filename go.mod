module github.com/htc-align/htc

go 1.24
